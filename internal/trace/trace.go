// Package trace is the simulator's versioned workload data plane: a
// self-describing arrival-trace format (format v1) with a strict
// line-numbered parser and a canonical writer, a serve.Source adapter that
// replays any trace file through the event-driven driver, an exporter that
// records a live run's admitted arrivals back into a valid trace file
// (simulate → export → replay reproduces the original admission stream),
// and declarative workload specs — client cohorts with per-cohort arrival
// processes, length distributions and SLO classes — compiled
// deterministically (seed-bound) into traces.
//
// Format v1 is a header of '#'-directives followed by a fixed six-column
// CSV body:
//
//	#adaserve-trace v1
//	#meta time-unit s
//	#meta seed 42
//	#meta source spec:bursty
//	#class 0 coding tpot=0.02 ttft=1
//	#class 1 chat tpot=0.05 ttft=1
//	arrival,class,prompt,output,tenant,session
//	0.5,1,60,80,,
//	1.25,0,160,90,3,12
//
// The header names the format version, the time unit (always seconds), the
// seed and provenance the body was derived from, and the SLO-class map
// (class ID, class name, TPOT SLO and TTFT SLO in seconds; ttft=0 means no
// TTFT deadline). Body rows are one admitted arrival each: arrival time
// (non-decreasing), class ID, prompt and output lengths in tokens, and
// optional tenant/session tags (empty: untagged). Parse errors carry the
// offending line number; Format renders the canonical form, and
// Parse(Format(t)) is the identity while Format(Parse(s)) is a fixed point
// — the round-trip contract the committed fuzz corpus pins.
package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Version is the trace format version this package reads and writes.
const Version = 1

// magic is the first token of every trace file.
const magic = "#adaserve-trace"

// csvHeader is the mandatory column header separating header from body.
const csvHeader = "arrival,class,prompt,output,tenant,session"

// ClassDef is one SLO class of the trace's class map.
type ClassDef struct {
	// ID is the class's identifier, referenced by body rows. Files declare
	// classes in strictly increasing ID order.
	ID int
	// Name is the class name; replay maps it onto a request category.
	Name string
	// TPOT is the class's per-token latency SLO in seconds (> 0).
	TPOT float64
	// TTFT is the class's time-to-first-token SLO in seconds (0: none).
	TTFT float64
}

// Header is the self-describing preamble of a trace file.
type Header struct {
	// Version is the format version (currently always 1).
	Version int
	// TimeUnit is the unit arrival times are expressed in (always "s").
	TimeUnit string
	// Seed is the seed the trace was derived from: the spec-compilation or
	// export seed, and the base for replayed requests' content seeds.
	Seed uint64
	// Source records provenance, e.g. "spec:bursty" or "export:adaserve-sim"
	// (empty: unknown).
	Source string
	// Classes is the SLO-class map in ID order.
	Classes []ClassDef
}

// Arrival is one body row: a single admitted request arrival.
type Arrival struct {
	// At is the arrival time in seconds.
	At float64
	// Class is the SLO-class ID (must be declared in the header).
	Class int
	// Prompt and Output are the token lengths (> 0).
	Prompt, Output int
	// Tenant and Session optionally tag the arrival with a client tenant
	// and conversation session (-1: untagged). Replay treats them as
	// metadata: replayed requests do not reconstruct shared prompt
	// prefixes from them.
	Tenant, Session int
}

// Trace is a parsed trace file.
type Trace struct {
	Header   Header
	Arrivals []Arrival
}

// num renders a float in the canonical trace form: shortest exact decimal,
// never exponent notation (so Format output always reparses to the same
// value).
func num(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// optInt renders a tenant/session tag (-1: empty field).
func optInt(v int) string {
	if v < 0 {
		return ""
	}
	return strconv.Itoa(v)
}

// Format renders the canonical form of the trace: directives in fixed
// order, classes in ID order, floats in shortest exact decimal form, one
// trailing newline. Parse(t.Format()) returns a trace equal to t for any t
// that validates.
func (t *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s v%d\n", magic, t.Header.Version)
	b.WriteString("#meta time-unit s\n")
	fmt.Fprintf(&b, "#meta seed %d\n", t.Header.Seed)
	if t.Header.Source != "" {
		fmt.Fprintf(&b, "#meta source %s\n", t.Header.Source)
	}
	for _, c := range t.Header.Classes {
		fmt.Fprintf(&b, "#class %d %s tpot=%s ttft=%s\n", c.ID, c.Name, num(c.TPOT), num(c.TTFT))
	}
	b.WriteString(csvHeader)
	b.WriteByte('\n')
	for _, a := range t.Arrivals {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%s,%s\n",
			num(a.At), a.Class, a.Prompt, a.Output, optInt(a.Tenant), optInt(a.Session))
	}
	return b.String()
}

// String implements fmt.Stringer (the canonical form).
func (t *Trace) String() string { return t.Format() }

// Class returns the class map entry for an ID, or false.
func (h *Header) Class(id int) (ClassDef, bool) {
	for _, c := range h.Classes {
		if c.ID == id {
			return c, true
		}
	}
	return ClassDef{}, false
}

// Validate checks the whole trace against the format invariants Parse
// enforces, so programmatically built traces fail here instead of
// producing files Parse would reject.
func (t *Trace) Validate() error {
	h := &t.Header
	if h.Version != Version {
		return fmt.Errorf("trace: unsupported format version %d (have v%d)", h.Version, Version)
	}
	if h.TimeUnit != "s" {
		return fmt.Errorf("trace: unsupported time unit %q (have s)", h.TimeUnit)
	}
	lastID := -1
	names := map[string]bool{}
	for _, c := range h.Classes {
		if c.ID <= lastID {
			return fmt.Errorf("trace: class IDs must be strictly increasing (class %d after %d)", c.ID, lastID)
		}
		lastID = c.ID
		if err := validClassName(c.Name); err != nil {
			return err
		}
		if names[c.Name] {
			return fmt.Errorf("trace: duplicate class name %q", c.Name)
		}
		names[c.Name] = true
		if !(c.TPOT > 0) || math.IsInf(c.TPOT, 0) {
			return fmt.Errorf("trace: class %d: TPOT SLO %g must be positive and finite", c.ID, c.TPOT)
		}
		if c.TTFT < 0 || math.IsNaN(c.TTFT) || math.IsInf(c.TTFT, 0) {
			return fmt.Errorf("trace: class %d: TTFT SLO %g must be non-negative and finite", c.ID, c.TTFT)
		}
	}
	last := 0.0
	for i, a := range t.Arrivals {
		if math.IsNaN(a.At) || math.IsInf(a.At, 0) || a.At < 0 {
			return fmt.Errorf("trace: arrival %d: bad time %g", i, a.At)
		}
		if a.At < last {
			return fmt.Errorf("trace: arrival %d: time %s before previous %s", i, num(a.At), num(last))
		}
		last = a.At
		if _, ok := h.Class(a.Class); !ok {
			return fmt.Errorf("trace: arrival %d: undeclared class %d", i, a.Class)
		}
		if a.Prompt <= 0 {
			return fmt.Errorf("trace: arrival %d: non-positive prompt length %d", i, a.Prompt)
		}
		if a.Output <= 0 {
			return fmt.Errorf("trace: arrival %d: non-positive output length %d", i, a.Output)
		}
		if a.Tenant < -1 || a.Session < -1 {
			return fmt.Errorf("trace: arrival %d: negative tenant/session tag", i)
		}
	}
	return nil
}

// validClassName rejects names the CSV body or the directive grammar could
// not round-trip.
func validClassName(name string) error {
	if name == "" {
		return fmt.Errorf("trace: empty class name")
	}
	if strings.ContainsAny(name, ", \t\n\r#=") {
		return fmt.Errorf("trace: class name %q contains a reserved character", name)
	}
	return nil
}

// lineErr formats a parse error carrying the 1-based line number.
func lineErr(n int, format string, args ...any) error {
	return fmt.Errorf("trace: line %d: %s", n, fmt.Sprintf(format, args...))
}

// Parse reads a trace file. The parser is strict — every malformed line
// fails with its line number — but tolerates blank lines and '#'-comment
// lines whose first word is not a directive, so hand-annotated traces stay
// loadable (comments are not preserved; Format renders the canonical
// form). The returned trace always passes Validate.
func Parse(data string) (*Trace, error) {
	t := &Trace{Header: Header{Version: Version, TimeUnit: "s"}}
	sawVersion, sawBody := false, false
	seenMeta := map[string]bool{}
	lastID := -1
	lastAt := 0.0
	for i, line := range strings.Split(data, "\n") {
		n := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !sawVersion {
			rest, ok := strings.CutPrefix(line, magic+" ")
			if !ok {
				return nil, lineErr(n, "not a trace file (want %q first)", magic+" v1")
			}
			vs, ok := strings.CutPrefix(rest, "v")
			if !ok {
				return nil, lineErr(n, "bad version %q (want v<N>)", rest)
			}
			v, err := strconv.Atoi(vs)
			if err != nil {
				return nil, lineErr(n, "bad version %q (want v<N>)", rest)
			}
			if v != Version {
				return nil, lineErr(n, "unsupported trace format version %d (this build reads v%d)", v, Version)
			}
			sawVersion = true
			continue
		}
		if line[0] == '#' {
			fields := strings.Fields(line[1:])
			var word string
			if len(fields) > 0 {
				word = fields[0]
			}
			switch word {
			case "meta":
				if sawBody {
					return nil, lineErr(n, "#meta after the CSV header")
				}
				if err := t.parseMeta(n, fields[1:], seenMeta); err != nil {
					return nil, err
				}
			case "class":
				if sawBody {
					return nil, lineErr(n, "#class after the CSV header")
				}
				c, err := parseClass(n, fields[1:])
				if err != nil {
					return nil, err
				}
				if c.ID <= lastID {
					return nil, lineErr(n, "class IDs must be strictly increasing (class %d after %d)", c.ID, lastID)
				}
				lastID = c.ID
				t.Header.Classes = append(t.Header.Classes, c)
			case "adaserve-trace":
				return nil, lineErr(n, "duplicate version line")
			default:
				// A comment; skipped and not preserved.
			}
			continue
		}
		if !sawBody {
			if line != csvHeader {
				return nil, lineErr(n, "expected CSV header %q, got %q", csvHeader, line)
			}
			sawBody = true
			continue
		}
		a, err := parseArrival(n, line)
		if err != nil {
			return nil, err
		}
		if a.At < lastAt {
			return nil, lineErr(n, "arrival time %s before previous %s", num(a.At), num(lastAt))
		}
		lastAt = a.At
		t.Arrivals = append(t.Arrivals, a)
	}
	if !sawVersion {
		return nil, fmt.Errorf("trace: empty input (want %q first)", magic+" v1")
	}
	if !sawBody {
		return nil, fmt.Errorf("trace: missing CSV header %q", csvHeader)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseMeta handles one "#meta key value" directive.
func (t *Trace) parseMeta(n int, kv []string, seen map[string]bool) error {
	if len(kv) < 2 {
		return lineErr(n, "#meta wants a key and a value")
	}
	key := kv[0]
	if seen[key] {
		return lineErr(n, "duplicate #meta %s", key)
	}
	seen[key] = true
	switch key {
	case "time-unit":
		if len(kv) != 2 || kv[1] != "s" {
			return lineErr(n, "unsupported time unit %q (have s)", strings.Join(kv[1:], " "))
		}
	case "seed":
		if len(kv) != 2 {
			return lineErr(n, "#meta seed wants one integer")
		}
		v, err := strconv.ParseUint(kv[1], 10, 64)
		if err != nil {
			return lineErr(n, "bad seed %q", kv[1])
		}
		t.Header.Seed = v
	case "source":
		if len(kv) != 2 {
			return lineErr(n, "#meta source wants one token")
		}
		t.Header.Source = kv[1]
	default:
		return lineErr(n, "unknown #meta key %q (time-unit, seed, source)", key)
	}
	return nil
}

// parseClass handles one "#class ID name tpot=T ttft=T" directive.
func parseClass(n int, fields []string) (ClassDef, error) {
	if len(fields) != 4 {
		return ClassDef{}, lineErr(n, "#class wants: #class <id> <name> tpot=<sec> ttft=<sec>")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil || id < 0 {
		return ClassDef{}, lineErr(n, "bad class ID %q", fields[0])
	}
	c := ClassDef{ID: id, Name: fields[1]}
	if err := validClassName(c.Name); err != nil {
		return ClassDef{}, lineErr(n, "%v", err)
	}
	for _, opt := range fields[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return ClassDef{}, lineErr(n, "bad class option %q", opt)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return ClassDef{}, lineErr(n, "bad class %s %q", key, val)
		}
		switch key {
		case "tpot":
			c.TPOT = v
		case "ttft":
			c.TTFT = v
		default:
			return ClassDef{}, lineErr(n, "unknown class option %q (tpot, ttft)", key)
		}
	}
	if c.TPOT <= 0 {
		return ClassDef{}, lineErr(n, "class %d needs a positive tpot SLO", id)
	}
	return c, nil
}

// parseArrival handles one six-column body row.
func parseArrival(n int, line string) (Arrival, error) {
	cols := strings.Split(line, ",")
	if len(cols) != 6 {
		return Arrival{}, lineErr(n, "want 6 columns (%s), got %d", csvHeader, len(cols))
	}
	at, err := strconv.ParseFloat(cols[0], 64)
	if err != nil || math.IsNaN(at) || math.IsInf(at, 0) || at < 0 {
		return Arrival{}, lineErr(n, "bad arrival time %q", cols[0])
	}
	class, err := strconv.Atoi(cols[1])
	if err != nil || class < 0 {
		return Arrival{}, lineErr(n, "bad class ID %q", cols[1])
	}
	prompt, err := strconv.Atoi(cols[2])
	if err != nil || prompt <= 0 {
		return Arrival{}, lineErr(n, "bad prompt length %q", cols[2])
	}
	output, err := strconv.Atoi(cols[3])
	if err != nil || output <= 0 {
		return Arrival{}, lineErr(n, "bad output length %q", cols[3])
	}
	a := Arrival{At: at, Class: class, Prompt: prompt, Output: output, Tenant: -1, Session: -1}
	if cols[4] != "" {
		if a.Tenant, err = strconv.Atoi(cols[4]); err != nil || a.Tenant < 0 {
			return Arrival{}, lineErr(n, "bad tenant tag %q", cols[4])
		}
	}
	if cols[5] != "" {
		if a.Session, err = strconv.Atoi(cols[5]); err != nil || a.Session < 0 {
			return Arrival{}, lineErr(n, "bad session tag %q", cols[5])
		}
	}
	return a, nil
}

// Duration returns the last arrival time (0 for an empty trace).
func (t *Trace) Duration() float64 {
	if len(t.Arrivals) == 0 {
		return 0
	}
	return t.Arrivals[len(t.Arrivals)-1].At
}

// Stats summarizes a trace for inspection: per-class arrival counts in
// class-map order plus aggregate length means.
type Stats struct {
	Arrivals   int
	PerClass   []int // indexed like Header.Classes
	MeanPrompt float64
	MeanOutput float64
	MeanRPS    float64
}

// Stats computes the trace's summary.
func (t *Trace) Stats() Stats {
	st := Stats{Arrivals: len(t.Arrivals), PerClass: make([]int, len(t.Header.Classes))}
	if len(t.Arrivals) == 0 {
		return st
	}
	idx := map[int]int{}
	for i, c := range t.Header.Classes {
		idx[c.ID] = i
	}
	var prompt, output float64
	for _, a := range t.Arrivals {
		if i, ok := idx[a.Class]; ok {
			st.PerClass[i]++
		}
		prompt += float64(a.Prompt)
		output += float64(a.Output)
	}
	st.MeanPrompt = prompt / float64(st.Arrivals)
	st.MeanOutput = output / float64(st.Arrivals)
	if d := t.Duration(); d > 0 {
		st.MeanRPS = float64(st.Arrivals) / d
	}
	return st
}
