package trace

import (
	"fmt"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
)

// seedSalt decorrelates replayed requests' content seeds from the other
// per-request seed streams derived from the same base seed.
const seedSalt = 0x7ace

// classCategories maps the trace's class map onto request categories by
// name. Parsing stays format-general (any class names load), but replay is
// strict: every class must name one of the simulator's request categories.
func classCategories(h *Header) (map[int]ClassDef, map[int]request.Category, error) {
	defs := make(map[int]ClassDef, len(h.Classes))
	cats := make(map[int]request.Category, len(h.Classes))
	for _, c := range h.Classes {
		defs[c.ID] = c
		found := false
		for i := 0; i < request.NumCategories; i++ {
			if request.Category(i).String() == c.Name {
				cats[c.ID] = request.Category(i)
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("trace: class %d %q does not name a request category", c.ID, c.Name)
		}
	}
	return defs, cats, nil
}

// makeRequest materializes one arrival as a request. IDs are the arrival's
// index in the trace; content seeds derive from the header seed so a
// replay is fully determined by the file.
func makeRequest(h *Header, defs map[int]ClassDef, cats map[int]request.Category, id int, a Arrival) *request.Request {
	c := defs[a.Class]
	r := request.New(id, cats[a.Class], c.TPOT, a.At, a.Prompt, a.Output,
		mathutil.Hash2(h.Seed, uint64(id)+seedSalt))
	r.TTFTSLO = c.TTFT
	return r
}

// Requests materializes the whole trace eagerly as replay-ordered
// requests, for callers that want the slice (e.g. closed-loop Results
// accounting). Fails if any class does not name a request category.
func (t *Trace) Requests() ([]*request.Request, error) {
	defs, cats, err := classCategories(&t.Header)
	if err != nil {
		return nil, err
	}
	reqs := make([]*request.Request, len(t.Arrivals))
	for i, a := range t.Arrivals {
		reqs[i] = makeRequest(&t.Header, defs, cats, i, a)
	}
	return reqs, nil
}

// Source replays a trace through the event-driven driver: a lazy
// serve.Source that materializes each request on Pop, in file order.
type Source struct {
	trace *Trace
	defs  map[int]ClassDef
	cats  map[int]request.Category
	next  int
}

// NewSource builds a replay source for a validated trace. Fails if any
// class does not name a request category.
func NewSource(t *Trace) (*Source, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	defs, cats, err := classCategories(&t.Header)
	if err != nil {
		return nil, err
	}
	return &Source{trace: t, defs: defs, cats: cats}, nil
}

// Peek reports the next arrival time without consuming it.
func (s *Source) Peek() (float64, bool) {
	if s.next >= len(s.trace.Arrivals) {
		return 0, false
	}
	return s.trace.Arrivals[s.next].At, true
}

// Pop consumes and materializes the next arrival.
func (s *Source) Pop() *request.Request {
	if s.next >= len(s.trace.Arrivals) {
		return nil
	}
	id := s.next
	s.next++
	return makeRequest(&s.trace.Header, s.defs, s.cats, id, s.trace.Arrivals[id])
}
