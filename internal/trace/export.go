package trace

import (
	"fmt"
	"sort"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// ExportOptions configures an Exporter.
type ExportOptions struct {
	// Seed is recorded in the exported header (and seeds replayed
	// requests' content).
	Seed uint64
	// Source is the provenance string for the header (default "export").
	Source string
	// Classes, when non-nil, is the full class map to emit instead of the
	// SLOs inferred from observed requests. Required when a class only
	// ever appears degraded (degradation destroys the original SLOs on
	// the request, so they cannot be inferred).
	Classes []ClassDef
}

// Exporter is a serve.Observer that records a run's admitted arrivals —
// from any source: open-loop, sessions, replayed traces — back into a
// valid trace, closing the loop: simulate → export → replay reproduces the
// original admission stream. Subscribe it before Run, then call Trace.
//
// Degraded requests are recorded under their original class
// (request.DegradedFrom): the export captures what arrived, not what
// admission rewrote it to, so a replay re-runs the same workload rather
// than a pre-degraded copy. Tenant and session tags are not reconstructed.
type Exporter struct {
	opts     ExportOptions
	arrivals []Arrival
	// slos maps a category to the (TPOT, TTFT) pair observed on
	// non-degraded requests of that class; degraded-only classes stay
	// unresolved until Trace (which then requires opts.Classes).
	slos map[request.Category][2]float64
	seen map[request.Category]bool
	err  error
}

// NewExporter builds an exporter; subscribe it on the server before Run.
func NewExporter(opts ExportOptions) *Exporter {
	if opts.Source == "" {
		opts.Source = "export"
	}
	return &Exporter{
		opts: opts,
		slos: map[request.Category][2]float64{},
		seen: map[request.Category]bool{},
	}
}

// OnEvent implements serve.Observer, recording RequestAdmitted events.
func (e *Exporter) OnEvent(ev serve.Event) {
	ra, ok := ev.(serve.RequestAdmitted)
	if !ok || e.err != nil {
		return
	}
	r := ra.Req
	cat := r.Category
	if r.Degraded {
		cat = r.DegradedFrom
	} else {
		slo := [2]float64{r.TPOTSLO, r.TTFTSLO}
		if prev, ok := e.slos[cat]; ok && prev != slo {
			e.err = fmt.Errorf("trace: export: class %s has conflicting SLOs (%g,%g) and (%g,%g); pass ExportOptions.Classes",
				cat, prev[0], prev[1], slo[0], slo[1])
			return
		}
		e.slos[cat] = slo
	}
	e.seen[cat] = true
	e.arrivals = append(e.arrivals, Arrival{
		At:     r.ArrivalTime,
		Class:  int(cat),
		Prompt: r.PromptLen,
		Output: r.MaxNewTokens,
		Tenant: -1, Session: -1,
	})
}

// Trace finalizes the export. The class map covers exactly the classes
// observed (or opts.Classes verbatim when given); it fails if a class only
// appeared degraded and no override supplies its SLOs.
func (e *Exporter) Trace() (*Trace, error) {
	if e.err != nil {
		return nil, e.err
	}
	t := &Trace{Header: Header{
		Version:  Version,
		TimeUnit: "s",
		Seed:     e.opts.Seed,
		Source:   e.opts.Source,
	}}
	if e.opts.Classes != nil {
		t.Header.Classes = append([]ClassDef(nil), e.opts.Classes...)
	} else {
		cats := make([]request.Category, 0, len(e.seen))
		for cat := range e.seen {
			cats = append(cats, cat)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
		for _, cat := range cats {
			slo, ok := e.slos[cat]
			if !ok {
				return nil, fmt.Errorf("trace: export: class %s only appeared degraded; pass ExportOptions.Classes with its SLOs", cat)
			}
			t.Header.Classes = append(t.Header.Classes, ClassDef{
				ID: int(cat), Name: cat.String(), TPOT: slo[0], TTFT: slo[1],
			})
		}
	}
	// The driver admits in arrival order, but be defensive: a future
	// out-of-order source would otherwise corrupt the export silently.
	if !sort.SliceIsSorted(e.arrivals, func(i, j int) bool { return e.arrivals[i].At < e.arrivals[j].At }) {
		return nil, fmt.Errorf("trace: export: admissions observed out of arrival order")
	}
	t.Arrivals = e.arrivals
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
