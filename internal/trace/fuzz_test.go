package trace

import (
	"reflect"
	"testing"
)

// FuzzTraceParse pins the parser's two contracts on arbitrary input: it
// never panics, and anything it accepts round-trips — Format is a fixed
// point and reparsing reproduces the same value. The committed corpus
// under testdata/fuzz/FuzzTraceParse seeds the interesting shapes.
func FuzzTraceParse(f *testing.F) {
	f.Add(sampleTrace().Format())
	f.Add("#adaserve-trace v1\narrival,class,prompt,output,tenant,session\n")
	f.Add("#adaserve-trace v1\n#meta seed 18446744073709551615\n# comment\n" +
		"#class 0 coding tpot=0.001 ttft=0\narrival,class,prompt,output,tenant,session\n0,0,1,1,0,0\n")
	f.Add("#adaserve-trace v2\n")
	f.Add("#adaserve-trace v1\n#class 0 a,b tpot=1 ttft=0\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := Parse(data)
		if err != nil {
			return
		}
		rendered := tr.Format()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%q", err, rendered)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("reparse mismatch:\n%+v\n%+v", tr, back)
		}
		if back.Format() != rendered {
			t.Fatalf("Format not a fixed point:\n%q\n%q", rendered, back.Format())
		}
	})
}

// FuzzSpecParse is the same contract for the workload-spec parser.
func FuzzSpecParse(f *testing.F) {
	f.Add(specText)
	f.Add("#adaserve-spec v1\n#meta seed 0\n#meta duration 1\n" +
		"cohort a class=chat rate=0.5 arrival=poisson:spike prompt=fixed:1 output=fixed:1\n")
	f.Add("#adaserve-spec v1\n#meta duration 1e9\n" +
		"cohort a class=summarization arrival=bursts:3600,1000,60 prompt=pareto:1,0.5,100000 output=uniform:1,2 weekly=0.9:1\n")
	f.Add("#adaserve-spec v9\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		rendered := s.Format()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%q", err, rendered)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("reparse mismatch:\n%+v\n%+v", s, back)
		}
		if back.Format() != rendered {
			t.Fatalf("Format not a fixed point:\n%q\n%q", rendered, back.Format())
		}
	})
}
