package trace

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

const specText = `#adaserve-spec v1
#meta seed 7
#meta duration 30
#meta name sample
cohort ide class=coding rate=1.5 arrival=poisson prompt=lognormal:160,0.45,32,1024 output=lognormal:90,0.5,16,512
cohort support class=chat arrival=bursts:10,12,2 prompt=uniform:16,256 output=fixed:64 tenants=3 sessions=8
cohort digest class=summarization rate=0.5 arrival=poisson:diurnal prompt=pareto:256,1.2,4096 output=lognormal:80,0.35,32,512 diurnal=0.4:30 tpot=0.2 ttft=5
`

func TestSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec(specText)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Seed != 7 || s.Duration != 30 || s.Name != "sample" || len(s.Cohorts) != 3 {
		t.Fatalf("bad spec: %+v", s)
	}
	if s.Format() != specText {
		t.Fatalf("Format != input:\n%s", s.Format())
	}
	if s.String() != specText {
		t.Fatal("String and Format disagree")
	}
	back, err := ParseSpec(s.Format())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, back)
	}
	c := s.Cohorts[1]
	if c.Arrival.Kind != "bursts" || c.Arrival.Interval != 10 || c.Arrival.Size != 12 || c.Arrival.Width != 2 {
		t.Fatalf("bursts parse: %+v", c.Arrival)
	}
	if c.Tenants != 3 || c.Sessions != 8 || c.TPOT != -1 || c.TTFT != -1 {
		t.Fatalf("cohort defaults: %+v", c)
	}
	if d := s.Cohorts[2].Diurnal; d.Amp != 0.4 || d.Period != 30 {
		t.Fatalf("diurnal parse: %+v", d)
	}
}

func TestSpecNormalization(t *testing.T) {
	// poisson:constant and a default-period diurnal normalize to the
	// canonical spellings.
	in := "#adaserve-spec v1\n#meta seed 1\n#meta duration 10\n" +
		"cohort a class=chat rate=1 arrival=poisson:constant prompt=fixed:10 output=fixed:10 diurnal=0.5 weekly=0\n"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	c := s.Cohorts[0]
	if c.Arrival.Profile != "constant" {
		t.Fatalf("profile = %q", c.Arrival.Profile)
	}
	if c.Diurnal.Period != diurnalPeriod {
		t.Fatalf("diurnal period = %g", c.Diurnal.Period)
	}
	if c.Weekly != (Modulation{}) {
		t.Fatalf("zero-amp weekly should normalize away: %+v", c.Weekly)
	}
	want := "cohort a class=chat rate=1 arrival=poisson prompt=fixed:10 output=fixed:10 diurnal=0.5:86400"
	if got := c.format(); got != want {
		t.Fatalf("canonical cohort:\n got %q\nwant %q", got, want)
	}
	back, err := ParseSpec(s.Format())
	if err != nil || !reflect.DeepEqual(s, back) {
		t.Fatalf("canonical reparse mismatch (%v)", err)
	}
}

func TestSpecParseErrors(t *testing.T) {
	const head = "#adaserve-spec v1\n#meta seed 1\n#meta duration 10\n"
	const okCohort = "cohort a class=chat rate=1 arrival=poisson prompt=fixed:10 output=fixed:10\n"
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty input"},
		{"wrong magic", "#adaserve-trace v1\n", "not a workload spec"},
		{"future version", "#adaserve-spec v9\n", "unsupported spec format version 9"},
		{"no duration", "#adaserve-spec v1\n#meta seed 1\n" + okCohort, "missing #meta duration"},
		{"bad duration", "#adaserve-spec v1\n#meta duration -5\n", "bad duration"},
		{"no cohorts", head, "no cohorts"},
		{"junk line", head + "cluster a\n", "expected a cohort line"},
		{"dup cohort", head + okCohort + okCohort, "duplicate cohort name"},
		{"no class", head + "cohort a rate=1 arrival=poisson prompt=fixed:1 output=fixed:1\n", "missing class="},
		{"bad class", head + "cohort a class=video rate=1 arrival=poisson prompt=fixed:1 output=fixed:1\n", "unknown class"},
		{"no rate", head + "cohort a class=chat arrival=poisson prompt=fixed:1 output=fixed:1\n", "needs rate="},
		{"bursts with rate", head + "cohort a class=chat rate=1 arrival=bursts:5,5,1 prompt=fixed:1 output=fixed:1\n", "takes no rate"},
		{"wide burst", head + "cohort a class=chat arrival=bursts:5,5,6 prompt=fixed:1 output=fixed:1\n", "exceeds interval"},
		{"bad profile", head + "cohort a class=chat rate=1 arrival=poisson:tidal prompt=fixed:1 output=fixed:1\n", "unknown rate profile"},
		{"bad arrival", head + "cohort a class=chat arrival=weibull prompt=fixed:1 output=fixed:1\n", "unknown arrival process"},
		{"no prompt", head + "cohort a class=chat rate=1 arrival=poisson output=fixed:1\n", "missing prompt="},
		{"bad dist", head + "cohort a class=chat rate=1 arrival=poisson prompt=zipf:3 output=fixed:1\n", "unknown distribution"},
		{"bad lognormal", head + "cohort a class=chat rate=1 arrival=poisson prompt=lognormal:0,1,1,2 output=fixed:1\n", "bad median"},
		{"bad pareto", head + "cohort a class=chat rate=1 arrival=poisson prompt=pareto:1,0,2 output=fixed:1\n", "bad alpha"},
		{"inverted uniform", head + "cohort a class=chat rate=1 arrival=poisson prompt=uniform:9,3 output=fixed:1\n", "bad max"},
		{"bad fixed", head + "cohort a class=chat rate=1 arrival=poisson prompt=fixed:0 output=fixed:1\n", "fixed wants"},
		{"bad amp", head + "cohort a class=chat rate=1 arrival=poisson prompt=fixed:1 output=fixed:1 diurnal=1.5\n", "amplitude"},
		{"bad period", head + "cohort a class=chat rate=1 arrival=poisson prompt=fixed:1 output=fixed:1 weekly=0.5:0\n", "period"},
		{"bad option", head + "cohort a class=chat rate=1 arrival=poisson prompt=fixed:1 output=fixed:1 color=red\n", "unknown cohort option"},
		{"dup option", head + "cohort a class=chat rate=1 rate=2 arrival=poisson prompt=fixed:1 output=fixed:1\n", "duplicate cohort option"},
		{"bad tpot", head + "cohort a class=chat rate=1 arrival=poisson prompt=fixed:1 output=fixed:1 tpot=0\n", "bad tpot"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec(c.in)
			if err == nil {
				t.Fatalf("ParseSpec succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestCompileDeterministic(t *testing.T) {
	data, err := os.ReadFile("testdata/sample.spec")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	s, err := ParseSpec(string(data))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	opts := CompileOptions{BaselineLatency: 0.02}
	a, err := Compile(s, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	b, err := Compile(s, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if a.Format() != b.Format() {
		t.Fatal("same spec+seed compiled to different traces")
	}
	if len(a.Arrivals) == 0 {
		t.Fatal("compiled trace is empty")
	}
	c, err := Compile(s, CompileOptions{BaselineLatency: 0.02, Seed: 999})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.Header.Seed != 999 {
		t.Fatalf("seed override not recorded: %d", c.Header.Seed)
	}
	if a.Format() == c.Format() {
		t.Fatal("different seeds compiled to identical traces")
	}
	// The result is a valid, replayable trace in canonical form.
	back, err := Parse(a.Format())
	if err != nil {
		t.Fatalf("Parse(compiled): %v", err)
	}
	if back.Format() != a.Format() {
		t.Fatal("compiled trace not canonical")
	}
	if _, err := NewSource(a); err != nil {
		t.Fatalf("NewSource(compiled): %v", err)
	}
	if a.Header.Source != "spec:sample" {
		t.Fatalf("provenance = %q", a.Header.Source)
	}
}

func TestCompileClasses(t *testing.T) {
	s, err := ParseSpec(specText)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	tr, err := Compile(s, CompileOptions{BaselineLatency: 0.02})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want := []ClassDef{
		{ID: 0, Name: "coding", TPOT: 1.2 * 0.02, TTFT: 1},
		{ID: 1, Name: "chat", TPOT: 0.05, TTFT: 1},
		{ID: 2, Name: "summarization", TPOT: 0.2, TTFT: 5}, // cohort override
	}
	if !reflect.DeepEqual(tr.Header.Classes, want) {
		t.Fatalf("classes = %+v, want %+v", tr.Header.Classes, want)
	}

	// Two cohorts disagreeing on a shared class must fail.
	conflict := "#adaserve-spec v1\n#meta seed 1\n#meta duration 10\n" +
		"cohort a class=chat rate=1 arrival=poisson prompt=fixed:10 output=fixed:10 tpot=0.05\n" +
		"cohort b class=chat rate=1 arrival=poisson prompt=fixed:10 output=fixed:10 tpot=0.08\n"
	cs, err := ParseSpec(conflict)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := Compile(cs, CompileOptions{BaselineLatency: 0.02}); err == nil ||
		!strings.Contains(err.Error(), "disagree") {
		t.Fatalf("Compile = %v, want SLO disagreement error", err)
	}

	if _, err := Compile(s, CompileOptions{}); err == nil {
		t.Fatal("Compile without BaselineLatency should fail")
	}
}

func TestCompileTagsAndClipping(t *testing.T) {
	in := "#adaserve-spec v1\n#meta seed 11\n#meta duration 20\n" +
		"cohort a class=chat rate=3 arrival=poisson prompt=fixed:6000 output=fixed:4000 tenants=2 sessions=4\n" +
		"cohort b class=coding rate=3 arrival=poisson prompt=fixed:10 output=fixed:10 tenants=3\n"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	tr, err := Compile(s, CompileOptions{BaselineLatency: 0.02})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sawA, sawB := false, false
	for _, a := range tr.Arrivals {
		switch a.Class {
		case 1: // cohort a
			sawA = true
			if a.Prompt+a.Output > 8192 {
				t.Fatalf("context clip failed: %d+%d", a.Prompt, a.Output)
			}
			if a.Tenant < 0 || a.Tenant > 1 || a.Session < 0 || a.Session > 3 {
				t.Fatalf("cohort a tags out of range: %+v", a)
			}
		case 0: // cohort b: tenant IDs namespaced after cohort a's
			sawB = true
			if a.Tenant < 2 || a.Tenant > 4 {
				t.Fatalf("cohort b tenant %d outside [2,4]", a.Tenant)
			}
			if a.Session != -1 {
				t.Fatalf("cohort b should be sessionless: %+v", a)
			}
		}
	}
	if !sawA || !sawB {
		t.Fatalf("missing cohort arrivals (a=%v b=%v)", sawA, sawB)
	}
}

func TestCompileBursts(t *testing.T) {
	in := "#adaserve-spec v1\n#meta seed 5\n#meta duration 40\n" +
		"cohort a class=chat arrival=bursts:10,20,2 prompt=fixed:10 output=fixed:10\n"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	tr, err := Compile(s, CompileOptions{BaselineLatency: 0.02})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Four burst centers (5, 15, 25, 35), each ±1s wide: every arrival
	// must land inside a burst window, and each window must be populated.
	hit := [4]int{}
	for _, a := range tr.Arrivals {
		in := false
		for k := 0; k < 4; k++ {
			center := 10*float64(k) + 5
			if a.At >= center-1 && a.At < center+1 {
				hit[k]++
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("arrival %g outside every burst window", a.At)
		}
	}
	for k, n := range hit {
		if n == 0 {
			t.Fatalf("burst %d empty", k)
		}
	}
	// ~20 arrivals per burst on average.
	if len(tr.Arrivals) < 40 || len(tr.Arrivals) > 160 {
		t.Fatalf("burst volume off: %d arrivals", len(tr.Arrivals))
	}
}

func TestNewSpecSource(t *testing.T) {
	s, err := ParseSpec(specText)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	src, err := NewSpecSource(s, CompileOptions{BaselineLatency: 0.02, Duration: 10})
	if err != nil {
		t.Fatalf("NewSpecSource: %v", err)
	}
	last := 0.0
	n := 0
	for {
		at, ok := src.Peek()
		if !ok {
			break
		}
		if at < last || at >= 10 {
			t.Fatalf("arrival %g out of order or past duration", at)
		}
		last = at
		if src.Pop() == nil {
			t.Fatal("Pop returned nil with arrivals pending")
		}
		n++
	}
	if n == 0 {
		t.Fatal("no arrivals")
	}
}
