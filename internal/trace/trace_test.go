package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adaserve/internal/request"
)

// sampleTrace builds a small valid trace covering all column shapes.
func sampleTrace() *Trace {
	return &Trace{
		Header: Header{
			Version:  Version,
			TimeUnit: "s",
			Seed:     7,
			Source:   "test",
			Classes: []ClassDef{
				{ID: 0, Name: "coding", TPOT: 0.024, TTFT: 1},
				{ID: 1, Name: "chat", TPOT: 0.05, TTFT: 1},
				{ID: 2, Name: "summarization", TPOT: 0.15, TTFT: 4},
			},
		},
		Arrivals: []Arrival{
			{At: 0.25, Class: 1, Prompt: 60, Output: 80, Tenant: -1, Session: -1},
			{At: 0.5, Class: 0, Prompt: 160, Output: 90, Tenant: 0, Session: 3},
			{At: 1.125, Class: 2, Prompt: 700, Output: 80, Tenant: 1, Session: -1},
			{At: 2.5, Class: 1, Prompt: 48, Output: 64, Tenant: -1, Session: 2},
		},
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	text := tr.Format()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Format): %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, back)
	}
	if back.Format() != text {
		t.Fatalf("Format not a fixed point:\n%q\n%q", text, back.Format())
	}
	if tr.String() != text {
		t.Fatal("String and Format disagree")
	}
	if got := (&Trace{Header: tr.Header}).Duration(); got != 0 {
		t.Fatalf("empty trace Duration = %g, want 0", got)
	}
}

func TestParseTolerance(t *testing.T) {
	// Blank lines and comments are tolerated and dropped; the reparse of
	// the canonical form equals the annotated original's parse.
	text := "#adaserve-trace v1\n\n# a comment\n#meta time-unit s\n#meta seed 3\n" +
		"#class 1 chat tpot=0.05 ttft=0\n\narrival,class,prompt,output,tenant,session\n" +
		"# another comment\n1,1,10,10,,\n\n"
	tr, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Header.Seed != 3 || len(tr.Arrivals) != 1 || tr.Arrivals[0].At != 1 {
		t.Fatalf("bad parse: %+v", tr)
	}
	back, err := Parse(tr.Format())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("canonical reparse mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	const header = "#adaserve-trace v1\n#meta time-unit s\n#meta seed 1\n" +
		"#class 0 coding tpot=0.02 ttft=1\narrival,class,prompt,output,tenant,session\n"
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty input"},
		{"not a trace", "hello\n", "line 1"},
		{"future version", "#adaserve-trace v2\n", "unsupported trace format version 2"},
		{"bad version", "#adaserve-trace vx\n", "bad version"},
		{"duplicate version", "#adaserve-trace v1\n#adaserve-trace v1\n", "duplicate version"},
		{"no body", "#adaserve-trace v1\n#meta seed 1\n", "missing CSV header"},
		{"bad meta", "#adaserve-trace v1\n#meta seed one\n", "line 2: bad seed"},
		{"dup meta", "#adaserve-trace v1\n#meta seed 1\n#meta seed 2\n", "duplicate #meta seed"},
		{"unknown meta", "#adaserve-trace v1\n#meta color red\n", "unknown #meta key"},
		{"bad time unit", "#adaserve-trace v1\n#meta time-unit ms\n", "unsupported time unit"},
		{"bad class line", "#adaserve-trace v1\n#class 0 coding\n", "#class wants"},
		{"bad class id", "#adaserve-trace v1\n#class x coding tpot=1 ttft=0\n", "bad class ID"},
		{"class id order", "#adaserve-trace v1\n#class 1 chat tpot=1 ttft=0\n#class 0 coding tpot=1 ttft=0\n", "strictly increasing"},
		{"zero tpot", "#adaserve-trace v1\n#class 0 coding tpot=0 ttft=0\n", "positive tpot"},
		{"bad csv header", "#adaserve-trace v1\narrival,class\n", "expected CSV header"},
		{"meta after body", header + "#meta seed 2\n", "#meta after"},
		{"class after body", header + "#class 1 chat tpot=1 ttft=0\n", "#class after"},
		{"short row", header + "1,0,10,10,\n", "want 6 columns"},
		{"bad time", header + "x,0,10,10,,\n", "bad arrival time"},
		{"negative time", header + "-1,0,10,10,,\n", "bad arrival time"},
		{"bad class ref", header + "1,9,10,10,,\n", "undeclared class 9"},
		{"zero prompt", header + "1,0,0,10,,\n", "bad prompt length"},
		{"zero output", header + "1,0,10,0,,\n", "bad output length"},
		{"bad tenant", header + "1,0,10,10,x,\n", "bad tenant tag"},
		{"bad session", header + "1,0,10,10,,-2\n", "bad session tag"},
		{"time went backwards", header + "2,0,10,10,,\n1,0,10,10,,\n", "before previous"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.in, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Parse(%q) error %q, want substring %q", c.in, err, c.want)
			}
		})
	}
}

func TestValidateErrors(t *testing.T) {
	mutate := func(f func(*Trace)) *Trace {
		tr := sampleTrace()
		f(tr)
		return tr
	}
	cases := []struct {
		name string
		tr   *Trace
		want string
	}{
		{"version", mutate(func(tr *Trace) { tr.Header.Version = 2 }), "unsupported format version"},
		{"time unit", mutate(func(tr *Trace) { tr.Header.TimeUnit = "ms" }), "unsupported time unit"},
		{"dup class name", mutate(func(tr *Trace) { tr.Header.Classes[1].Name = "coding" }), "duplicate class name"},
		{"reserved name", mutate(func(tr *Trace) { tr.Header.Classes[1].Name = "a,b" }), "reserved character"},
		{"class order", mutate(func(tr *Trace) { tr.Header.Classes[2].ID = 1 }), "strictly increasing"},
		{"negative ttft", mutate(func(tr *Trace) { tr.Header.Classes[0].TTFT = -1 }), "TTFT"},
		{"unsorted", mutate(func(tr *Trace) { tr.Arrivals[3].At = 0 }), "before previous"},
		{"undeclared", mutate(func(tr *Trace) { tr.Arrivals[0].Class = 9 }), "undeclared class"},
		{"bad tag", mutate(func(tr *Trace) { tr.Arrivals[0].Tenant = -2 }), "negative tenant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.tr.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestStats(t *testing.T) {
	tr := sampleTrace()
	st := tr.Stats()
	if st.Arrivals != 4 {
		t.Fatalf("Arrivals = %d", st.Arrivals)
	}
	if want := []int{1, 2, 1}; !reflect.DeepEqual(st.PerClass, want) {
		t.Fatalf("PerClass = %v, want %v", st.PerClass, want)
	}
	if st.MeanPrompt != (60+160+700+48)/4.0 {
		t.Fatalf("MeanPrompt = %g", st.MeanPrompt)
	}
	if st.MeanRPS != 4/2.5 {
		t.Fatalf("MeanRPS = %g", st.MeanRPS)
	}
	if d := tr.Duration(); d != 2.5 {
		t.Fatalf("Duration = %g", d)
	}
}

func TestSourceReplay(t *testing.T) {
	tr := sampleTrace()
	src, err := NewSource(tr)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	reqs, err := tr.Requests()
	if err != nil {
		t.Fatalf("Requests: %v", err)
	}
	if len(reqs) != len(tr.Arrivals) {
		t.Fatalf("Requests len = %d", len(reqs))
	}
	for i, a := range tr.Arrivals {
		at, ok := src.Peek()
		if !ok || at != a.At {
			t.Fatalf("Peek %d = (%g,%v), want %g", i, at, ok, a.At)
		}
		r := src.Pop()
		if r.ID != i || r.ArrivalTime != a.At || int(r.Category) != a.Class ||
			r.PromptLen != a.Prompt || r.MaxNewTokens != a.Output {
			t.Fatalf("Pop %d = %+v, want arrival %+v", i, r, a)
		}
		c, _ := tr.Header.Class(a.Class)
		if r.TPOTSLO != c.TPOT || r.TTFTSLO != c.TTFT {
			t.Fatalf("Pop %d SLOs (%g,%g), want (%g,%g)", i, r.TPOTSLO, r.TTFTSLO, c.TPOT, c.TTFT)
		}
		// The eager and lazy paths materialize identical requests.
		if e := reqs[i]; e.Seed != r.Seed || e.ArrivalTime != r.ArrivalTime || e.Category != r.Category {
			t.Fatalf("eager/lazy mismatch at %d", i)
		}
	}
	if _, ok := src.Peek(); ok {
		t.Fatal("Peek after drain")
	}
	if src.Pop() != nil {
		t.Fatal("Pop after drain")
	}
}

func TestSourceUnknownClass(t *testing.T) {
	tr := sampleTrace()
	tr.Header.Classes[0].Name = "tier-a"
	if _, err := NewSource(tr); err == nil || !strings.Contains(err.Error(), "request category") {
		t.Fatalf("NewSource = %v, want category error", err)
	}
	if _, err := tr.Requests(); err == nil {
		t.Fatal("Requests should fail on unknown class")
	}
	// The general parser still loads the file — only replay is strict.
	if _, err := Parse(tr.Format()); err != nil {
		t.Fatalf("Parse of non-category class: %v", err)
	}
}

// TestTestdataCanonical validates every committed trace and spec file:
// each must parse and already be in canonical form.
func TestTestdataCanonical(t *testing.T) {
	checkDir(t, "testdata")
}

// checkDir walks a directory tree and asserts every .trace/.spec file
// parses to its own canonical form. Shared with the experiments package's
// committed specs via their own test.
func checkDir(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		ext := filepath.Ext(path)
		if ext != ".trace" && ext != ".spec" {
			return nil
		}
		n++
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		var canonical string
		if ext == ".trace" {
			tr, err := Parse(string(data))
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return nil
			}
			canonical = tr.Format()
		} else {
			sp, err := ParseSpec(string(data))
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return nil
			}
			canonical = sp.Format()
		}
		if canonical != string(data) {
			t.Errorf("%s: not in canonical form; want:\n%s", path, canonical)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	if n == 0 {
		t.Fatalf("no .trace/.spec files under %s", dir)
	}
}

func TestCategoryNamesStayMapped(t *testing.T) {
	// Replay maps class names onto categories by String(); if a category
	// rename ever breaks that contract this fails loudly.
	for i := 0; i < request.NumCategories; i++ {
		name := request.Category(i).String()
		if err := validClassName(name); err != nil {
			t.Fatalf("category %d name %q not a valid class name: %v", i, name, err)
		}
	}
}
