package trace

import (
	"strings"
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

func admitted(r *request.Request) serve.Event {
	return serve.RequestAdmitted{EventMeta: serve.EventMeta{Time: r.ArrivalTime}, Req: r}
}

func TestExporterRoundTrip(t *testing.T) {
	e := NewExporter(ExportOptions{Seed: 42, Source: "export:test"})
	mk := func(id int, cat request.Category, tpot, at float64, prompt, out int, ttft float64) *request.Request {
		r := request.New(id, cat, tpot, at, prompt, out, 1)
		r.TTFTSLO = ttft
		return r
	}
	reqs := []*request.Request{
		mk(0, request.Chat, 0.05, 0.5, 60, 80, 1),
		mk(1, request.Coding, 0.024, 1.25, 160, 90, 1),
		mk(2, request.Chat, 0.05, 2, 48, 64, 1),
	}
	for _, r := range reqs {
		e.OnEvent(admitted(r))
	}
	tr, err := e.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr.Header.Seed != 42 || tr.Header.Source != "export:test" {
		t.Fatalf("header: %+v", tr.Header)
	}
	want := []ClassDef{
		{ID: 0, Name: "coding", TPOT: 0.024, TTFT: 1},
		{ID: 1, Name: "chat", TPOT: 0.05, TTFT: 1},
	}
	if len(tr.Header.Classes) != 2 || tr.Header.Classes[0] != want[0] || tr.Header.Classes[1] != want[1] {
		t.Fatalf("classes = %+v, want %+v", tr.Header.Classes, want)
	}
	// Replay reproduces the original admission stream exactly.
	replayed, err := tr.Requests()
	if err != nil {
		t.Fatalf("Requests: %v", err)
	}
	if len(replayed) != len(reqs) {
		t.Fatalf("replay len = %d", len(replayed))
	}
	for i, r := range replayed {
		o := reqs[i]
		if r.ArrivalTime != o.ArrivalTime || r.Category != o.Category ||
			r.PromptLen != o.PromptLen || r.MaxNewTokens != o.MaxNewTokens ||
			r.TPOTSLO != o.TPOTSLO || r.TTFTSLO != o.TTFTSLO {
			t.Fatalf("replayed %d = %+v, want %+v", i, r, o)
		}
	}
	// The exported text is a valid canonical trace file.
	back, err := Parse(tr.Format())
	if err != nil {
		t.Fatalf("Parse(exported): %v", err)
	}
	if back.Format() != tr.Format() {
		t.Fatal("exported trace not canonical")
	}
}

func TestExporterDegraded(t *testing.T) {
	e := NewExporter(ExportOptions{Seed: 1})
	healthy := request.New(0, request.Chat, 0.05, 1, 60, 80, 1)
	healthy.TTFTSLO = 1
	e.OnEvent(admitted(healthy))
	deg := request.New(1, request.Chat, 0.05, 2, 70, 90, 1)
	deg.TTFTSLO = 1
	deg.Degrade(0.5)
	e.OnEvent(admitted(deg))
	tr, err := e.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// Both record under chat — the class they arrived with — even though
	// degradation rewrote the second to summarization.
	if len(tr.Header.Classes) != 1 || tr.Header.Classes[0].Name != "chat" {
		t.Fatalf("classes = %+v", tr.Header.Classes)
	}
	if tr.Arrivals[1].Class != int(request.Chat) || tr.Arrivals[1].Prompt != 70 {
		t.Fatalf("degraded arrival = %+v", tr.Arrivals[1])
	}
	// Its SLOs come from the non-degraded sibling, not the degraded copy.
	c := tr.Header.Classes[0]
	if c.TPOT != 0.05 || c.TTFT != 1 {
		t.Fatalf("class SLOs = %+v", c)
	}
}

func TestExporterDegradedOnlyClass(t *testing.T) {
	mkDegraded := func() serve.Event {
		r := request.New(0, request.Coding, 0.024, 1, 60, 80, 1)
		r.Degrade(0.5)
		return admitted(r)
	}
	e := NewExporter(ExportOptions{Seed: 1})
	e.OnEvent(mkDegraded())
	if _, err := e.Trace(); err == nil || !strings.Contains(err.Error(), "only appeared degraded") {
		t.Fatalf("Trace = %v, want degraded-only error", err)
	}
	// The Classes override resolves it.
	e = NewExporter(ExportOptions{Seed: 1, Classes: []ClassDef{
		{ID: 0, Name: "coding", TPOT: 0.024, TTFT: 1},
	}})
	e.OnEvent(mkDegraded())
	tr, err := e.Trace()
	if err != nil {
		t.Fatalf("Trace with override: %v", err)
	}
	if len(tr.Header.Classes) != 1 || tr.Arrivals[0].Class != 0 {
		t.Fatalf("override export: %+v", tr)
	}
}

func TestExporterConflictingSLOs(t *testing.T) {
	e := NewExporter(ExportOptions{Seed: 1})
	a := request.New(0, request.Chat, 0.05, 1, 60, 80, 1)
	b := request.New(1, request.Chat, 0.08, 2, 60, 80, 1)
	e.OnEvent(admitted(a))
	e.OnEvent(admitted(b))
	if _, err := e.Trace(); err == nil || !strings.Contains(err.Error(), "conflicting SLOs") {
		t.Fatalf("Trace = %v, want conflict error", err)
	}
}
