package core

import (
	"math"
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/toktree"
)

// candTree builds a 2-level candidate tree:
// root -> a(qa) -> c(qc), root -> b(qb).
func candTree(qa, qb, qc float64) *toktree.Tree {
	tr := toktree.NewTree(lm.Context{ReqSeed: 1}, 0)
	a := tr.AddChild(0, 10, qa)
	tr.AddChild(0, 11, qb)
	tr.AddChild(a, 12, qc)
	return tr
}

func TestSelectMeetsThresholdMinimally(t *testing.T) {
	// A(r) = 1.6: the root provides 1.0; one 0.7 node suffices (Figure 5's
	// A_cap(r0)=0.6 example, shifted by the root's contribution).
	tr := candTree(0.7, 0.2, 0.6)
	res, err := Select([]SelectRequest{{Cand: tr, MinAccept: 1.6}},
		SelectConfig{Budget: 2, Depth: 3, PerRequestMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selections[0].Size() != 2 {
		t.Fatalf("selected %d nodes, want 2", res.Selections[0].Size())
	}
	if !res.SLOSatisfied[0] {
		t.Fatal("threshold should be satisfied")
	}
	if math.Abs(res.ExpectedAccept[0]-1.7) > 1e-9 {
		t.Fatalf("E[acc] = %g", res.ExpectedAccept[0])
	}
}

func TestSelectFigure5Scenario(t *testing.T) {
	// Reproduce the paper's Figure 5: two requests, budget 8.
	// r0: A_cap needs 1.6 total (root 1.0 + t1 0.7 suffices).
	// r1: A_cap needs 1.8 (root + 0.5 + 0.4).
	// Throughput phase then adds the globally best remaining nodes.
	r0 := toktree.NewTree(lm.Context{ReqSeed: 0}, 0)
	a0 := r0.AddChild(0, 1, 0.7)
	r0.AddChild(0, 2, 0.2)
	b0 := r0.AddChild(a0, 3, 0.6) // f=0.42
	r0.AddChild(a0, 4, 0.3)       // f=0.21
	r0.AddChild(b0, 5, 0.7)       // f=0.294
	r0.AddChild(b0, 6, 0.3)       // f=0.126

	r1 := toktree.NewTree(lm.Context{ReqSeed: 1}, 0)
	a1 := r1.AddChild(0, 1, 0.5)
	r1.AddChild(0, 2, 0.4)
	b1 := r1.AddChild(a1, 3, 0.7) // f=0.35
	r1.AddChild(a1, 4, 0.48)      // f=0.24
	r1.AddChild(b1, 5, 0.4)       // f=0.14
	r1.AddChild(b1, 6, 0.4)       // f=0.14

	res, err := Select([]SelectRequest{
		{Cand: r0, MinAccept: 1.6},
		{Cand: r1, MinAccept: 1.8},
	}, SelectConfig{Budget: 8, Depth: 3, PerRequestMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetUsed != 8 {
		t.Fatalf("budget used %d, want all 8", res.BudgetUsed)
	}
	if !res.SLOSatisfied[0] || !res.SLOSatisfied[1] {
		t.Fatal("both SLO thresholds should be met")
	}
	// r0 should hold root, t1 (0.7) and the throughput picks t3 (0.42) and
	// t5 (0.294); r1 holds root, t1 (0.5), t2 (0.4) and t3 (0.35).
	if got := res.Selections[0].Size(); got != 4 {
		t.Fatalf("r0 selected %d nodes, want 4", got)
	}
	if got := res.Selections[1].Size(); got != 4 {
		t.Fatalf("r1 selected %d nodes, want 4", got)
	}
	wantE0 := 1 + 0.7 + 0.42 + 0.294
	if math.Abs(res.ExpectedAccept[0]-wantE0) > 1e-9 {
		t.Fatalf("r0 E[acc] = %g, want %g", res.ExpectedAccept[0], wantE0)
	}
	wantE1 := 1 + 0.5 + 0.4 + 0.35
	if math.Abs(res.ExpectedAccept[1]-wantE1) > 1e-9 {
		t.Fatalf("r1 E[acc] = %g, want %g", res.ExpectedAccept[1], wantE1)
	}
}

func TestSelectHardestFirstUnderScarcity(t *testing.T) {
	// Budget only covers roots + 1 node; the request with the larger A(r)
	// must receive it.
	easy := candTree(0.9, 0.5, 0.8)
	hard := candTree(0.6, 0.3, 0.5)
	res, err := Select([]SelectRequest{
		{Cand: easy, MinAccept: 1.2},
		{Cand: hard, MinAccept: 2.5},
	}, SelectConfig{Budget: 3, Depth: 3, PerRequestMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selections[1].Size() != 2 || res.Selections[0].Size() != 1 {
		t.Fatalf("scarce budget went to sizes %d/%d, want 1/2",
			res.Selections[0].Size(), res.Selections[1].Size())
	}
}

func TestSelectACapLimitsThreshold(t *testing.T) {
	// Depth 1 caps attainable accepts at 2; a huge A(r) must be capped and
	// reported satisfied once E[acc] reaches the cap.
	tr := candTree(0.9, 0.8, 0.7)
	res, err := Select([]SelectRequest{{Cand: tr, MinAccept: 50}},
		SelectConfig{Budget: 4, Depth: 1, PerRequestMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	// cap = min(50, 2) = 2; root(1) + 0.9 = 1.9 < 2, + 0.8 = 2.7 >= 2.
	if !res.SLOSatisfied[0] {
		t.Fatalf("capped threshold should be reachable; E=%g", res.ExpectedAccept[0])
	}
}

func TestSelectPerRequestMax(t *testing.T) {
	tr := candTree(0.9, 0.8, 0.85)
	res, err := Select([]SelectRequest{{Cand: tr, MinAccept: 10}},
		SelectConfig{Budget: 10, Depth: 3, PerRequestMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	// n_max = 2 (root + 1) during the SLO phase; the throughput phase may
	// then add more — but only the SLO phase is bounded by n_max, matching
	// Algorithm 2 where the cap guards the threshold-chasing loop.
	if res.Selections[0].Size() < 2 {
		t.Fatal("selection below n_max")
	}
	if res.SLOSatisfied[0] {
		t.Fatal("threshold unreachable under n_max should be reported unmet")
	}
}

func TestSelectBudgetNeverExceeded(t *testing.T) {
	trees := []SelectRequest{
		{Cand: candTree(0.9, 0.8, 0.7), MinAccept: 3},
		{Cand: candTree(0.6, 0.5, 0.4), MinAccept: 3},
		{Cand: candTree(0.3, 0.2, 0.1), MinAccept: 3},
	}
	for budget := 3; budget <= 12; budget++ {
		res, err := Select(trees, SelectConfig{Budget: budget, Depth: 2, PerRequestMax: 4})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range res.Selections {
			total += s.Size()
		}
		if total != res.BudgetUsed {
			t.Fatalf("budget accounting mismatch: %d vs %d", total, res.BudgetUsed)
		}
		if total > budget {
			t.Fatalf("budget %d exceeded: %d", budget, total)
		}
	}
}

func TestSelectRejectsBudgetBelowRoots(t *testing.T) {
	trees := []SelectRequest{
		{Cand: candTree(0.9, 0.8, 0.7)},
		{Cand: candTree(0.6, 0.5, 0.4)},
	}
	if _, err := Select(trees, SelectConfig{Budget: 1, Depth: 2, PerRequestMax: 4}); err == nil {
		t.Fatal("budget below one root per request accepted")
	}
}

func TestSelectRejectsNegativeDepth(t *testing.T) {
	trees := []SelectRequest{{Cand: candTree(0.9, 0.8, 0.7)}}
	if _, err := Select(trees, SelectConfig{Budget: 4, Depth: -1, PerRequestMax: 4}); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestSelectSelectionsAreValidTrees(t *testing.T) {
	trees := []SelectRequest{
		{Cand: candTree(0.9, 0.8, 0.7), MinAccept: 2.0},
		{Cand: candTree(0.6, 0.5, 0.4), MinAccept: 1.2},
	}
	res, err := Select(trees, SelectConfig{Budget: 7, Depth: 2, PerRequestMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Selections {
		if err := s.Validate(); err != nil {
			t.Fatalf("selection %d: %v", i, err)
		}
	}
}

func TestSelectThroughputPhaseGlobalOrder(t *testing.T) {
	// With no SLO pressure, the throughput phase must pick the globally
	// highest-f nodes across requests.
	rich := candTree(0.9, 0.85, 0.8) // f: 0.9, 0.85, 0.72
	poor := candTree(0.3, 0.2, 0.1)  // f: 0.3, 0.2, 0.03
	res, err := Select([]SelectRequest{
		{Cand: rich, MinAccept: 0},
		{Cand: poor, MinAccept: 0},
	}, SelectConfig{Budget: 5, Depth: 2, PerRequestMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 5: 2 roots + 3 nodes, all from the rich tree.
	if res.Selections[0].Size() != 4 || res.Selections[1].Size() != 1 {
		t.Fatalf("sizes %d/%d, want 4/1",
			res.Selections[0].Size(), res.Selections[1].Size())
	}
}
