// Package core implements the paper's primary contribution:
//
//   - Algorithm 1: optimal token-tree construction under known path
//     probabilities (with the optimality and connectivity properties of
//     Appendices B and C);
//   - Algorithm 2: SLO-customized speculative decoding's two selection
//     phases (SLO-customized selection and throughput-optimized selection)
//     over beam-search candidate trees;
//   - the adaptive (d, w) controller of Eq. 8–9.
//
// Everything here is pure CPU planning code — the paper measures it as the
// "scheduling" slice of Figure 15 — and is deterministic: all ties are
// broken by (request index, node ID).
package core

// frontierItem is a candidate node eligible for selection: its parent is
// already selected, it is not.
type frontierItem struct {
	req      int     // request index
	node     int     // node ID within the request's candidate tree
	pathProb float64 // approximated f(v)
}

// frontierHeap is a max-heap on pathProb with deterministic tie-breaking.
// The sift operations are hand-rolled (not container/heap) so pushing and
// popping never box items through interfaces — the selection phases run
// allocation-free once the backing arrays are warm. The (req, node) pair is
// unique per item, so the comparator is a total order and the pop sequence
// does not depend on sift internals.
type frontierHeap []frontierItem

func (h frontierHeap) Len() int { return len(h) }

func (h frontierHeap) Less(i, j int) bool {
	if h[i].pathProb != h[j].pathProb {
		return h[i].pathProb > h[j].pathProb
	}
	if h[i].req != h[j].req {
		return h[i].req < h[j].req
	}
	return h[i].node < h[j].node
}

func (h frontierHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// pushItem appends it and restores the heap property.
func pushItem(h *frontierHeap, it frontierItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.Less(i, p) {
			break
		}
		s.Swap(i, p)
		i = p
	}
}

// popItem removes and returns the top item.
func popItem(h *frontierHeap) frontierItem {
	s := *h
	n := len(s) - 1
	s.Swap(0, n)
	it := s[n]
	*h = s[:n]
	siftDown(*h, 0)
	return it
}

// initHeap establishes the heap property over arbitrary contents.
func initHeap(h frontierHeap) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// siftDown restores the heap property below index i.
func siftDown(s frontierHeap, i int) {
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && s.Less(r, l) {
			j = r
		}
		if !s.Less(j, i) {
			return
		}
		s.Swap(i, j)
		i = j
	}
}
