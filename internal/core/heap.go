// Package core implements the paper's primary contribution:
//
//   - Algorithm 1: optimal token-tree construction under known path
//     probabilities (with the optimality and connectivity properties of
//     Appendices B and C);
//   - Algorithm 2: SLO-customized speculative decoding's two selection
//     phases (SLO-customized selection and throughput-optimized selection)
//     over beam-search candidate trees;
//   - the adaptive (d, w) controller of Eq. 8–9.
//
// Everything here is pure CPU planning code — the paper measures it as the
// "scheduling" slice of Figure 15 — and is deterministic: all ties are
// broken by (request index, node ID).
package core

import "container/heap"

// frontierItem is a candidate node eligible for selection: its parent is
// already selected, it is not.
type frontierItem struct {
	req      int     // request index
	node     int     // node ID within the request's candidate tree
	pathProb float64 // approximated f(v)
}

// frontierHeap is a max-heap on pathProb with deterministic tie-breaking.
type frontierHeap []frontierItem

func (h frontierHeap) Len() int { return len(h) }

func (h frontierHeap) Less(i, j int) bool {
	if h[i].pathProb != h[j].pathProb {
		return h[i].pathProb > h[j].pathProb
	}
	if h[i].req != h[j].req {
		return h[i].req < h[j].req
	}
	return h[i].node < h[j].node
}

func (h frontierHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *frontierHeap) Push(x any) { *h = append(*h, x.(frontierItem)) }

func (h *frontierHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func pushItem(h *frontierHeap, it frontierItem) { heap.Push(h, it) }

func popItem(h *frontierHeap) frontierItem { return heap.Pop(h).(frontierItem) }
