package core

import (
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
	"adaserve/internal/toktree"
)

// TestSelectorMatchesSelect drives one pooled Selector through many
// iterations with varying batch sizes and checks every result against the
// allocating free function — the pooling-determinism contract schedulers
// rely on.
func TestSelectorMatchesSelect(t *testing.T) {
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.85, 2)
	rng := mathutil.NewRNG(99)
	var sel Selector
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(12)
		reqs := make([]SelectRequest, n)
		for i := range reqs {
			br, err := toktree.BeamSearch(draft,
				lm.Context{ReqSeed: uint64(iter*100 + i)}, 5, 1+rng.Intn(6), 1+rng.Intn(4))
			if err != nil {
				t.Fatal(err)
			}
			reqs[i] = SelectRequest{Cand: br.Tree, MinAccept: float64(rng.Intn(8)) / 2}
		}
		cfg := SelectConfig{
			Budget:        n + rng.Intn(64),
			Depth:         6,
			PerRequestMax: rng.Intn(12), // 0 = unlimited on some iterations
		}
		want, err := Select(reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sel.Select(reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.BudgetUsed != want.BudgetUsed {
			t.Fatalf("iter %d: BudgetUsed %d, want %d", iter, got.BudgetUsed, want.BudgetUsed)
		}
		for i := range reqs {
			if got.ExpectedAccept[i] != want.ExpectedAccept[i] ||
				got.SLOSatisfied[i] != want.SLOSatisfied[i] ||
				got.Selections[i].Size() != want.Selections[i].Size() {
				t.Fatalf("iter %d req %d: pooled selector diverged", iter, i)
			}
			for id := 0; id < reqs[i].Cand.Size(); id++ {
				if got.Selections[i].Has(id) != want.Selections[i].Has(id) {
					t.Fatalf("iter %d req %d node %d: selection membership differs", iter, i, id)
				}
			}
			if err := got.Selections[i].Validate(); err != nil {
				t.Fatalf("iter %d req %d: %v", iter, i, err)
			}
		}
	}
}
