package core

import (
	"fmt"

	"adaserve/internal/mathutil"
)

// Controller implements AdaServe's adaptive speculation control (Eq. 8–9):
// at the start of each iteration, the depth d and beam width w of the
// candidate trees are recomputed from the number of active requests n:
//
//	d = clip(D_max, D_min, ⌊B1/(n+c1)⌋ − 1)
//	w = clip(W_max, 1,     ⌊B2/n⌋ + c2)
//
// B1 is the verifier's per-iteration token budget and B2 the speculator's,
// so depth tracks the average verification budget per request (speculating
// deeper than can be verified is wasted draft compute) and width tracks the
// speculator's own parallel capacity.
type Controller struct {
	// DMin and DMax bound the speculation depth.
	DMin, DMax int
	// WMax bounds the beam width (lower bound is 1).
	WMax int
	// B1 is the verifier token budget per decoding step.
	B1 int
	// B2 is the speculator token budget per decoding step.
	B2 int
	// C1 and C2 are the tunable constants of Eq. 8–9 (grid-searched).
	C1, C2 int
}

// DefaultController returns the controller configuration used by the
// experiment suite, parameterized by the verifier budget.
func DefaultController(verifierBudget int) Controller {
	return Controller{
		DMin: 1, DMax: 8, WMax: 4,
		B1: verifierBudget,
		B2: verifierBudget,
		// C1 is grid-searched (as the paper does): it damps depth at small
		// n, where draft steps are the marginal cost, while leaving the
		// d ~ B/n scaling at load.
		C1: 12, C2: 0,
	}
}

// Validate reports whether the bounds are coherent.
func (c Controller) Validate() error {
	if c.DMin < 0 || c.DMax < c.DMin {
		return fmt.Errorf("core: controller depth bounds [%d,%d] invalid", c.DMin, c.DMax)
	}
	if c.WMax < 1 {
		return fmt.Errorf("core: controller WMax %d < 1", c.WMax)
	}
	if c.B1 <= 0 || c.B2 <= 0 {
		return fmt.Errorf("core: controller budgets B1=%d B2=%d must be positive", c.B1, c.B2)
	}
	if c.C1 < 0 {
		return fmt.Errorf("core: controller C1 %d < 0 (divides by n+C1)", c.C1)
	}
	return nil
}

// Params returns the speculation depth and beam width for n active
// requests. n <= 0 is treated as 1 (the policy is only consulted when there
// is work).
func (c Controller) Params(n int) (d, w int) {
	return c.ParamsWithBudget(n, c.B1, c.B2)
}

// ParamsWithBudget evaluates Eq. 8–9 with explicit per-iteration budgets,
// for schedulers whose verification budget varies with load.
func (c Controller) ParamsWithBudget(n, b1, b2 int) (d, w int) {
	if n <= 0 {
		n = 1
	}
	d = mathutil.ClipInt(b1/(n+c.C1)-1, c.DMin, c.DMax)
	w = mathutil.ClipInt(b2/n+c.C2, 1, c.WMax)
	return d, w
}

// StaticController returns a controller that always yields (d, w),
// for the static-speculation ablation.
func StaticController(d, w int) Controller {
	return Controller{DMin: d, DMax: d, WMax: w, B1: 1, B2: w * 1 << 20, C1: 0, C2: 0}
}
