package core

import (
	"errors"
	"math"
	"testing"

	"adaserve/internal/mathutil"
)

// chainTree builds a simple chain with geometric path probabilities.
func chainTree(t *testing.T, probs ...float64) *SliceTree {
	t.Helper()
	parents := make([]int, len(probs)+1)
	ps := make([]float64, len(probs)+1)
	parents[0], ps[0] = -1, 1
	for i, p := range probs {
		parents[i+1] = i
		ps[i+1] = p
	}
	st, err := NewSliceTree(parents, ps)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSliceTreeValidation(t *testing.T) {
	if _, err := NewSliceTree([]int{-1, 0}, []float64{1, 0.5}); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if _, err := NewSliceTree([]int{0, 0}, []float64{1, 0.5}); err == nil {
		t.Error("root with parent 0 accepted")
	}
	if _, err := NewSliceTree([]int{-1, 0}, []float64{1, 1.5}); err == nil {
		t.Error("child prob above parent accepted")
	}
	if _, err := NewSliceTree([]int{-1, 2}, []float64{1, 0.5}); err == nil {
		t.Error("forward parent reference accepted")
	}
	if _, err := NewSliceTree(nil, nil); err == nil {
		t.Error("empty tree accepted")
	}
}

func TestOptimalTreesSingleRequestGreedy(t *testing.T) {
	// Root -> {0.7 -> 0.5, 0.2}: with budget 3 and no SLO pressure, pick
	// the two highest-f nodes: 0.7 and 0.5.
	st := MustSliceTree([]int{-1, 0, 1, 0}, []float64{1, 0.7, 0.5, 0.2})
	sel, err := OptimalTrees([]ProbTree{st}, []float64{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := ExpectedAccept(st, sel[0])
	if math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("E[acc] = %g, want 2.2 (root+0.7+0.5)", got)
	}
}

func TestOptimalTreesRespectsSLOFirst(t *testing.T) {
	// Two requests; request 1 has a high threshold. With budget 4 (2 roots
	// + 2 nodes), both extra nodes must go to request 1 even though request
	// 0 owns the globally best node.
	t0 := chainTree(t, 0.9, 0.8)
	t1 := chainTree(t, 0.6, 0.5)
	sel, err := OptimalTrees([]ProbTree{t0, t1}, []float64{0, 2.1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel[1]) != 3 {
		t.Fatalf("request 1 got %d nodes, want 3 (root+2)", len(sel[1]))
	}
	if len(sel[0]) != 1 {
		t.Fatalf("request 0 got %d nodes, want just the root", len(sel[0]))
	}
	if got := ExpectedAccept(t1, sel[1]); got < 2.1 {
		t.Fatalf("request 1 E[acc] %g below threshold", got)
	}
}

func TestOptimalTreesInvalidWhenInfeasible(t *testing.T) {
	t0 := chainTree(t, 0.5, 0.4)
	// Threshold 2.5 needs more than root+2 nodes, but the budget is 2.
	_, err := OptimalTrees([]ProbTree{t0}, []float64{2.5}, 2)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	// Budget below one root per request is infeasible outright.
	if _, err := OptimalTrees([]ProbTree{t0, t0}, []float64{0, 0}, 1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid for budget < n, got %v", err)
	}
}

func TestOptimalTreesExhaustedOracle(t *testing.T) {
	// A finite tree whose total mass cannot reach the threshold.
	t0 := chainTree(t, 0.3)
	_, err := OptimalTrees([]ProbTree{t0}, []float64{5}, 100)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
}

func TestOptimalTreesSpendsFullBudget(t *testing.T) {
	t0 := chainTree(t, 0.9, 0.8, 0.7, 0.6, 0.5)
	sel, err := OptimalTrees([]ProbTree{t0}, []float64{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel[0]) != 4 {
		t.Fatalf("selected %d nodes with budget 4", len(sel[0]))
	}
}

func TestOptimalTreesConnectivity(t *testing.T) {
	rng := mathutil.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		st := randomSliceTree(rng, 20)
		sel, err := OptimalTrees([]ProbTree{st}, []float64{0}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !isConnected(st, sel[0]) {
			t.Fatalf("trial %d: selection %v not connected", trial, sel[0])
		}
	}
}

// TestOptimalTreesBruteForce is the Appendix C optimality check: on small
// random instances, Algorithm 1's objective equals the best over ALL valid
// (connected, budgeted, threshold-satisfying) selections found by brute
// force, and Algorithm 1 declares INVALID exactly when brute force finds
// nothing feasible.
func TestOptimalTreesBruteForce(t *testing.T) {
	rng := mathutil.NewRNG(99)
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(2)
		trees := make([]ProbTree, n)
		slices := make([]*SliceTree, n)
		for i := range trees {
			st := randomSliceTree(rng, 5+rng.Intn(3))
			trees[i] = st
			slices[i] = st
		}
		thresholds := make([]float64, n)
		for i := range thresholds {
			thresholds[i] = rng.Float64() * 2.2
		}
		budget := n + rng.Intn(5)

		got, err := OptimalTrees(trees, thresholds, budget)
		bestObj, feasible := bruteForceBest(slices, thresholds, budget)

		if errors.Is(err, ErrInvalid) {
			if feasible {
				t.Fatalf("trial %d: algorithm INVALID but brute force found %g", trial, bestObj)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			t.Fatalf("trial %d: algorithm succeeded but brute force says infeasible", trial)
		}
		var obj float64
		for i := range got {
			e := ExpectedAccept(trees[i], got[i])
			if e < thresholds[i]-1e-9 {
				t.Fatalf("trial %d: request %d threshold %g unmet (%g)", trial, i, thresholds[i], e)
			}
			obj += e
		}
		if obj < bestObj-1e-9 {
			t.Fatalf("trial %d: algorithm objective %g < brute force %g", trial, obj, bestObj)
		}
	}
}

// bruteForceBest enumerates all connected selections (roots forced) within
// the budget and returns the best total E[acc] meeting every threshold.
func bruteForceBest(trees []*SliceTree, thresholds []float64, budget int) (float64, bool) {
	// Enumerate per-tree candidate subsets (connected, containing root).
	type subset struct {
		size int
		e    float64
	}
	perTree := make([][]subset, len(trees))
	for i, st := range trees {
		n := st.Len()
		for mask := 0; mask < 1<<n; mask++ {
			if mask&1 == 0 {
				continue // root required
			}
			ok := true
			var e float64
			size := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) == 0 {
					continue
				}
				if b != 0 && mask&(1<<st.Parents[b]) == 0 {
					ok = false
					break
				}
				e += st.Probs[b]
				size++
			}
			if ok && size <= budget {
				perTree[i] = append(perTree[i], subset{size: size, e: e})
			}
		}
	}
	best, feasible := 0.0, false
	var rec func(i, used int, total float64, allMeet bool)
	rec = func(i, used int, total float64, allMeet bool) {
		if used > budget {
			return
		}
		if i == len(trees) {
			if allMeet && (!feasible || total > best) {
				best, feasible = total, true
			}
			return
		}
		for _, s := range perTree[i] {
			rec(i+1, used+s.size, total+s.e, allMeet && s.e >= thresholds[i]-1e-12)
		}
	}
	rec(0, 0, 0, true)
	return best, feasible
}

// randomSliceTree builds a random valid probability tree of n nodes.
func randomSliceTree(rng *mathutil.RNG, n int) *SliceTree {
	parents := make([]int, n)
	probs := make([]float64, n)
	parents[0], probs[0] = -1, 1
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		parents[i] = p
		probs[i] = probs[p] * (0.1 + 0.85*rng.Float64())
	}
	st, err := NewSliceTree(parents, probs)
	if err != nil {
		panic(err)
	}
	return st
}

func isConnected(st *SliceTree, sel []int) bool {
	in := map[int]bool{}
	for _, id := range sel {
		in[id] = true
	}
	if !in[0] {
		return false
	}
	for _, id := range sel {
		if id != 0 && !in[st.Parents[id]] {
			return false
		}
	}
	return true
}

func TestOptimalTreesMismatchedInputs(t *testing.T) {
	t0 := chainTree(t, 0.5)
	if _, err := OptimalTrees([]ProbTree{t0}, []float64{0, 0}, 5); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
