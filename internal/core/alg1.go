package core

import (
	"errors"
	"fmt"
)

// ErrInvalid is returned by OptimalTrees when no feasible allocation meets
// every request's SLO within the budget (Algorithm 1 returns INVALID).
var ErrInvalid = errors.New("core: SLO targets infeasible within token budget")

// ProbTree is the oracle over a request's token tree with known path
// probabilities f(v) — T_inf(r) in the paper. Implementations may be finite
// explicit trees (tests, brute-force comparisons) or lazily expanded
// draft-model-backed trees.
//
// Node 0 is the root with PathProb 1. Children must satisfy
// PathProb(child) <= PathProb(parent) (language models assign probability
// < 1 per token), which Algorithm 1's correctness relies on.
type ProbTree interface {
	// Children returns the IDs of the node's children.
	Children(node int) []int
	// PathProb returns f(v) for the node.
	PathProb(node int) float64
}

// OptimalTrees implements Algorithm 1: given per-request probability-oracle
// trees, per-request minimum expected accepts A(r), and the total token
// budget B (which counts roots), it returns for each request the selected
// node IDs (roots included) forming the optimal draft token trees.
//
// Step 1 satisfies each request's SLO threshold greedily; step 2 spends the
// remaining budget on the globally highest-f(v) nodes. It returns
// ErrInvalid exactly when no feasible solution exists (Appendix C, part 1).
//
// Deviations from the paper's pseudocode, both deliberate:
//   - roots consume budget (as in Algorithm 2's initialization, so that
//     Σ|T_i| ≤ B counts every verified token);
//   - loop guards use "budget remaining > 0" where the pseudocode's
//     "B ≥ 0 / B ≤ 0" tests would over- or under-spend by one.
func OptimalTrees(trees []ProbTree, minAccept []float64, budget int) ([][]int, error) {
	n := len(trees)
	if n != len(minAccept) {
		return nil, fmt.Errorf("core: %d trees but %d thresholds", n, len(minAccept))
	}
	if budget < n {
		return nil, ErrInvalid // every tree needs at least its root
	}
	selected := make([][]int, n)
	perReq := make([]frontierHeap, n)
	acc := make([]float64, n)
	b := budget
	for i, t := range trees {
		selected[i] = []int{0}
		acc[i] = 1 // the root counts: verification always commits >= 1 token
		b--
		for _, c := range t.Children(0) {
			pushItem(&perReq[i], frontierItem{req: i, node: c, pathProb: t.PathProb(c)})
		}
	}

	// Step 1: add nodes toward SLO requirements.
	for i, t := range trees {
		for acc[i] < minAccept[i] {
			if b <= 0 {
				return nil, ErrInvalid
			}
			if perReq[i].Len() == 0 {
				// The oracle tree is exhausted below the threshold; with a
				// genuinely infinite tree this cannot happen, but finite
				// oracles (tests) can run dry — treat as infeasible.
				return nil, ErrInvalid
			}
			it := popItem(&perReq[i])
			selected[i] = append(selected[i], it.node)
			acc[i] += it.pathProb
			b--
			for _, c := range t.Children(it.node) {
				pushItem(&perReq[i], frontierItem{req: i, node: c, pathProb: t.PathProb(c)})
			}
		}
	}

	// Step 2: spend the remaining budget globally.
	var global frontierHeap
	for i := range perReq {
		global = append(global, perReq[i]...)
	}
	initHeap(global)
	for b > 0 && global.Len() > 0 {
		it := popItem(&global)
		selected[it.req] = append(selected[it.req], it.node)
		b--
		for _, c := range trees[it.req].Children(it.node) {
			pushItem(&global, frontierItem{req: it.req, node: c, pathProb: trees[it.req].PathProb(c)})
		}
	}
	return selected, nil
}

// ExpectedAccept sums f(v) over a selection on tree t: E[acc(T)] per
// Theorem 3.1.
func ExpectedAccept(t ProbTree, nodes []int) float64 {
	var s float64
	for _, id := range nodes {
		s += t.PathProb(id)
	}
	return s
}

// SliceTree is an explicit finite ProbTree for tests and brute-force
// verification: parent links and path probabilities given as slices.
type SliceTree struct {
	// Parents[i] is node i's parent; Parents[0] must be -1.
	Parents []int
	// Probs[i] is f(node i); Probs[0] must be 1.
	Probs []float64

	children [][]int
}

// NewSliceTree validates and indexes an explicit tree.
func NewSliceTree(parents []int, probs []float64) (*SliceTree, error) {
	if len(parents) != len(probs) || len(parents) == 0 {
		return nil, fmt.Errorf("core: slice tree needs equal non-empty parents/probs")
	}
	if parents[0] != -1 || probs[0] != 1 {
		return nil, fmt.Errorf("core: slice tree root must have parent -1 and prob 1")
	}
	st := &SliceTree{Parents: parents, Probs: probs, children: make([][]int, len(parents))}
	for i := 1; i < len(parents); i++ {
		p := parents[i]
		if p < 0 || p >= i {
			return nil, fmt.Errorf("core: node %d has invalid parent %d (must precede it)", i, p)
		}
		if probs[i] > probs[p] {
			return nil, fmt.Errorf("core: node %d prob %g exceeds parent prob %g", i, probs[i], probs[p])
		}
		st.children[p] = append(st.children[p], i)
	}
	return st, nil
}

// MustSliceTree panics on error; for test fixtures.
func MustSliceTree(parents []int, probs []float64) *SliceTree {
	st, err := NewSliceTree(parents, probs)
	if err != nil {
		panic(err)
	}
	return st
}

// Children implements ProbTree.
func (s *SliceTree) Children(node int) []int { return s.children[node] }

// PathProb implements ProbTree.
func (s *SliceTree) PathProb(node int) float64 { return s.Probs[node] }

// Len returns the node count.
func (s *SliceTree) Len() int { return len(s.Parents) }
