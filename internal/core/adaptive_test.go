package core

import (
	"testing"
	"testing/quick"
)

func TestDefaultControllerValid(t *testing.T) {
	c := DefaultController(200)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerValidateRejects(t *testing.T) {
	bad := []Controller{
		{DMin: -1, DMax: 4, WMax: 2, B1: 10, B2: 10},
		{DMin: 5, DMax: 4, WMax: 2, B1: 10, B2: 10},
		{DMin: 1, DMax: 4, WMax: 0, B1: 10, B2: 10},
		{DMin: 1, DMax: 4, WMax: 2, B1: 0, B2: 10},
		{DMin: 1, DMax: 4, WMax: 2, B1: 10, B2: 0},
		{DMin: 1, DMax: 4, WMax: 2, B1: 10, B2: 10, C1: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should not validate", i)
		}
	}
}

func TestParamsEquation(t *testing.T) {
	// Eq. 8-9 with B1=120, B2=60, c1=2, c2=0:
	// n=10: d = clip(120/12 - 1) = 9 -> DMax; w = clip(60/10) = 6 -> WMax.
	c := Controller{DMin: 1, DMax: 8, WMax: 4, B1: 120, B2: 60, C1: 2, C2: 0}
	d, w := c.Params(10)
	if d != 8 || w != 4 {
		t.Fatalf("n=10: (d,w) = (%d,%d), want (8,4)", d, w)
	}
	// n=58: d = clip(120/60 - 1) = 1; w = clip(60/58) = 1.
	d, w = c.Params(58)
	if d != 1 || w != 1 {
		t.Fatalf("n=58: (d,w) = (%d,%d), want (1,1)", d, w)
	}
	// n=28: d = clip(120/30-1) = 3; w = clip(60/28)=2.
	d, w = c.Params(28)
	if d != 3 || w != 2 {
		t.Fatalf("n=28: (d,w) = (%d,%d), want (3,2)", d, w)
	}
}

func TestParamsMonotoneDecreasing(t *testing.T) {
	c := DefaultController(160)
	prevD, prevW := 1<<30, 1<<30
	for n := 1; n <= 200; n++ {
		d, w := c.Params(n)
		if d > prevD || w > prevW {
			t.Fatalf("params increased with load at n=%d", n)
		}
		prevD, prevW = d, w
	}
}

func TestParamsBoundsProperty(t *testing.T) {
	c := DefaultController(200)
	err := quick.Check(func(nRaw uint16, b1Raw, b2Raw uint16) bool {
		n := int(nRaw%500) + 1
		b1 := int(b1Raw%1000) + 1
		b2 := int(b2Raw%1000) + 1
		d, w := c.ParamsWithBudget(n, b1, b2)
		return d >= c.DMin && d <= c.DMax && w >= 1 && w <= c.WMax
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParamsZeroRequests(t *testing.T) {
	c := DefaultController(160)
	d0, w0 := c.Params(0)
	d1, w1 := c.Params(1)
	if d0 != d1 || w0 != w1 {
		t.Fatal("n=0 should behave like n=1")
	}
}

func TestStaticController(t *testing.T) {
	c := StaticController(5, 3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5, 50, 500} {
		d, w := c.Params(n)
		if d != 5 || w != 3 {
			t.Fatalf("static controller returned (%d,%d) at n=%d", d, w, n)
		}
	}
}
