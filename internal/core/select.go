package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"adaserve/internal/toktree"
)

// SelectRequest is one request's input to Algorithm 2's selection phases.
type SelectRequest struct {
	// Cand is the candidate token tree built by the speculation phase.
	Cand *toktree.Tree
	// MinAccept is A(r): the minimum expected accepted tokens this
	// iteration needs to keep the request on its SLO.
	MinAccept float64
}

// SelectConfig tunes Algorithm 2's selection phases.
type SelectConfig struct {
	// Budget is the total verification token budget B (counts roots).
	Budget int
	// Depth is the speculation depth d; A_cap(r) = min(A(r), d+1) because a
	// depth-d tree can commit at most d+1 tokens.
	Depth int
	// PerRequestMax is n_max: the cap on one request's draft-tree size
	// during SLO-customized selection, preventing a hard request from
	// monopolizing the budget with low-probability nodes. <= 0 means
	// unlimited (ablation).
	PerRequestMax int
}

// SelectResult reports the outcome of the two selection phases.
type SelectResult struct {
	// Selections holds the draft token tree for each request, parallel to
	// the input slice.
	Selections []*toktree.Selection
	// ExpectedAccept[i] is Σ f(v) over request i's selection.
	ExpectedAccept []float64
	// SLOSatisfied[i] reports whether E[acc] reached A_cap(r_i) during the
	// SLO-customized phase.
	SLOSatisfied []bool
	// BudgetUsed counts nodes selected in total (incl. roots).
	BudgetUsed int
}

// Select runs Algorithm 2's SLO-customized selection followed by
// throughput-optimized selection over the candidate trees.
//
// Phase ordering (paper §4.3): requests are processed in descending A(r) so
// that when the budget cannot satisfy everyone, the slowest requests (those
// needing the most progress) are served first. Within a request, nodes are
// taken from the candidate tree in descending approximated-f(v) order, with
// parents always preceding children (connectivity, Appendix B). The
// remaining budget is then spent globally on the highest-f(v) candidates.
func Select(reqs []SelectRequest, cfg SelectConfig) (*SelectResult, error) {
	n := len(reqs)
	if cfg.Budget < n {
		return nil, fmt.Errorf("core: budget %d below one root per request (%d)", cfg.Budget, n)
	}
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("core: negative depth %d", cfg.Depth)
	}
	res := &SelectResult{
		Selections:     make([]*toktree.Selection, n),
		ExpectedAccept: make([]float64, n),
		SLOSatisfied:   make([]bool, n),
	}
	frontiers := make([]frontierHeap, n)
	budget := cfg.Budget

	// Initialization: every request's root is selected and costs budget.
	for i, rq := range reqs {
		res.Selections[i] = toktree.NewSelection(rq.Cand)
		res.ExpectedAccept[i] = 1
		budget--
		for _, c := range rq.Cand.Nodes[0].Children {
			pushItem(&frontiers[i], frontierItem{
				req: i, node: c, pathProb: rq.Cand.Nodes[c].PathProb,
			})
		}
	}

	// SLO-customized selection, hardest requests first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].MinAccept > reqs[order[b]].MinAccept
	})
	maxPerReq := cfg.PerRequestMax
	if maxPerReq <= 0 {
		maxPerReq = math.MaxInt
	}
	for _, i := range order {
		cap_ := capThreshold(reqs[i].MinAccept, cfg.Depth)
		for res.ExpectedAccept[i] < cap_ &&
			res.Selections[i].Size() < maxPerReq &&
			budget > 0 && frontiers[i].Len() > 0 {
			it := popItem(&frontiers[i])
			addNode(res, &frontiers[i], reqs[i].Cand, i, it)
			budget--
		}
		res.SLOSatisfied[i] = res.ExpectedAccept[i] >= cap_
	}

	// Throughput-optimized selection: global greedy over all frontiers.
	var global frontierHeap
	for i := range frontiers {
		global = append(global, frontiers[i]...)
	}
	heap.Init(&global)
	for budget > 0 && global.Len() > 0 {
		it := popItem(&global)
		addNode(res, &global, reqs[it.req].Cand, it.req, it)
		budget--
	}

	res.BudgetUsed = cfg.Budget - budget
	return res, nil
}

// capThreshold is A_cap(r) = min(A(r), d+1): a depth-d candidate tree cannot
// commit more than d+1 tokens, so deficits beyond that are unattainable this
// iteration (the request catches up over subsequent iterations).
func capThreshold(minAccept float64, depth int) float64 {
	limit := float64(depth + 1)
	if minAccept > limit {
		return limit
	}
	return minAccept
}

// addNode selects the node and pushes its children onto the given frontier.
func addNode(res *SelectResult, h *frontierHeap, cand *toktree.Tree, req int, it frontierItem) {
	res.Selections[req].Add(it.node)
	res.ExpectedAccept[req] += it.pathProb
	for _, c := range cand.Nodes[it.node].Children {
		pushItem(h, frontierItem{req: req, node: c, pathProb: cand.Nodes[c].PathProb})
	}
}
