package core

import (
	"fmt"
	"math"

	"adaserve/internal/toktree"
)

// SelectRequest is one request's input to Algorithm 2's selection phases.
type SelectRequest struct {
	// Cand is the candidate token tree built by the speculation phase.
	Cand *toktree.Tree
	// MinAccept is A(r): the minimum expected accepted tokens this
	// iteration needs to keep the request on its SLO.
	MinAccept float64
}

// SelectConfig tunes Algorithm 2's selection phases.
type SelectConfig struct {
	// Budget is the total verification token budget B (counts roots).
	Budget int
	// Depth is the speculation depth d; A_cap(r) = min(A(r), d+1) because a
	// depth-d tree can commit at most d+1 tokens.
	Depth int
	// PerRequestMax is n_max: the cap on one request's draft-tree size
	// during SLO-customized selection, preventing a hard request from
	// monopolizing the budget with low-probability nodes. <= 0 means
	// unlimited (ablation).
	PerRequestMax int
}

// SelectResult reports the outcome of the two selection phases.
type SelectResult struct {
	// Selections holds the draft token tree for each request, parallel to
	// the input slice.
	Selections []*toktree.Selection
	// ExpectedAccept[i] is Σ f(v) over request i's selection.
	ExpectedAccept []float64
	// SLOSatisfied[i] reports whether E[acc] reached A_cap(r_i) during the
	// SLO-customized phase.
	SLOSatisfied []bool
	// BudgetUsed counts nodes selected in total (incl. roots).
	BudgetUsed int
}

// Selector runs Algorithm 2's selection phases with pooled scratch: the
// frontier heaps, ordering slices, selection masks, and the result storage
// are all reused across calls, so a warm Selector allocates nothing. The
// zero value is ready to use. The returned SelectResult (and the Selections
// inside it) stays valid only until the next Select call on the same
// Selector — the per-iteration lifetime schedulers already observe. Not
// safe for concurrent use; schedulers own one each.
type Selector struct {
	frontiers []frontierHeap
	order     []int
	global    frontierHeap
	sels      []*toktree.Selection
	res       SelectResult
}

// Select runs Algorithm 2's SLO-customized selection followed by
// throughput-optimized selection over the candidate trees.
//
// Phase ordering (paper §4.3): requests are processed in descending A(r) so
// that when the budget cannot satisfy everyone, the slowest requests (those
// needing the most progress) are served first. Within a request, nodes are
// taken from the candidate tree in descending approximated-f(v) order, with
// parents always preceding children (connectivity, Appendix B). The
// remaining budget is then spent globally on the highest-f(v) candidates.
//
// This convenience form allocates fresh storage per call; schedulers reuse a
// Selector. Both produce identical results.
func Select(reqs []SelectRequest, cfg SelectConfig) (*SelectResult, error) {
	var s Selector
	return s.Select(reqs, cfg)
}

// Select implements the free function Select over the pooled storage.
func (s *Selector) Select(reqs []SelectRequest, cfg SelectConfig) (*SelectResult, error) {
	n := len(reqs)
	if cfg.Budget < n {
		return nil, fmt.Errorf("core: budget %d below one root per request (%d)", cfg.Budget, n)
	}
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("core: negative depth %d", cfg.Depth)
	}
	res := s.reset(n)
	budget := cfg.Budget

	// Initialization: every request's root is selected and costs budget.
	for i, rq := range reqs {
		res.Selections[i].Reset(rq.Cand)
		res.ExpectedAccept[i] = 1
		budget--
		for _, c := range rq.Cand.Nodes[0].Children {
			pushItem(&s.frontiers[i], frontierItem{
				req: i, node: c, pathProb: rq.Cand.Nodes[c].PathProb,
			})
		}
	}

	// SLO-customized selection, hardest requests first. The sort is a
	// stable insertion sort: identical ordering to sort.SliceStable, no
	// reflection closures on the per-iteration path (batches are small and
	// nearly sorted in practice).
	order := s.order
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && reqs[order[j]].MinAccept > reqs[order[j-1]].MinAccept; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	maxPerReq := cfg.PerRequestMax
	if maxPerReq <= 0 {
		maxPerReq = math.MaxInt
	}
	for _, i := range order {
		cap_ := capThreshold(reqs[i].MinAccept, cfg.Depth)
		for res.ExpectedAccept[i] < cap_ &&
			res.Selections[i].Size() < maxPerReq &&
			budget > 0 && s.frontiers[i].Len() > 0 {
			it := popItem(&s.frontiers[i])
			addNode(res, &s.frontiers[i], reqs[i].Cand, i, it)
			budget--
		}
		res.SLOSatisfied[i] = res.ExpectedAccept[i] >= cap_
	}

	// Throughput-optimized selection: global greedy over all frontiers.
	s.global = s.global[:0]
	for i := range s.frontiers {
		s.global = append(s.global, s.frontiers[i]...)
	}
	initHeap(s.global)
	for budget > 0 && s.global.Len() > 0 {
		it := popItem(&s.global)
		addNode(res, &s.global, reqs[it.req].Cand, it.req, it)
		budget--
	}

	res.BudgetUsed = cfg.Budget - budget
	return res, nil
}

// reset sizes the pooled storage for n requests and clears it.
func (s *Selector) reset(n int) *SelectResult {
	if cap(s.frontiers) < n {
		s.frontiers = append(s.frontiers[:cap(s.frontiers)], make([]frontierHeap, n-cap(s.frontiers))...)
	}
	s.frontiers = s.frontiers[:n]
	for i := range s.frontiers {
		s.frontiers[i] = s.frontiers[i][:0]
	}
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	s.order = s.order[:n]
	for len(s.sels) < n {
		s.sels = append(s.sels, &toktree.Selection{})
	}

	res := &s.res
	if cap(res.Selections) < n {
		res.Selections = make([]*toktree.Selection, n)
		res.ExpectedAccept = make([]float64, n)
		res.SLOSatisfied = make([]bool, n)
	}
	res.Selections = res.Selections[:n]
	res.ExpectedAccept = res.ExpectedAccept[:n]
	res.SLOSatisfied = res.SLOSatisfied[:n]
	for i := 0; i < n; i++ {
		res.Selections[i] = s.sels[i]
		res.ExpectedAccept[i] = 0
		res.SLOSatisfied[i] = false
	}
	res.BudgetUsed = 0
	return res
}

// capThreshold is A_cap(r) = min(A(r), d+1): a depth-d candidate tree cannot
// commit more than d+1 tokens, so deficits beyond that are unattainable this
// iteration (the request catches up over subsequent iterations).
func capThreshold(minAccept float64, depth int) float64 {
	limit := float64(depth + 1)
	if minAccept > limit {
		return limit
	}
	return minAccept
}

// addNode selects the node and pushes its children onto the given frontier.
func addNode(res *SelectResult, h *frontierHeap, cand *toktree.Tree, req int, it frontierItem) {
	res.Selections[req].Add(it.node)
	res.ExpectedAccept[req] += it.pathProb
	for _, c := range cand.Nodes[it.node].Children {
		pushItem(h, frontierItem{req: req, node: c, pathProb: cand.Nodes[c].PathProb})
	}
}
