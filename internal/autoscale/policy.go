// Package autoscale is the elastic-fleet control loop: a Controller that
// observes a serving run's event stream through rolling windows and resizes
// an elastic cluster (internal/cluster's replica lifecycle) at deterministic
// event-time instants, under a pluggable scaling Policy bounded by
// hysteresis.
//
// The split mirrors production autoscalers (SLOs-Serve, AIBrix): policies
// are pure functions from observed Signals to a desired replica count, so
// they are trivially comparable under identical traffic; everything
// stateful — decision cadence, cooldowns, scale-step bounds, the shared
// budget across role pools, sustained-headroom counting — lives in the
// Controller, applied identically to every policy.
package autoscale

import (
	"fmt"
	"math"
)

// Signals is one role pool's observed state at a decision instant: what a
// Policy decides from. All windowed quantities come from the controller's
// rolling views over the event stream; occupancy comes from the cluster.
type Signals struct {
	// Now is the decision instant in simulated seconds.
	Now float64
	// Active/Provisioning/Draining are the pool's lifecycle occupancy;
	// Committed = Active + Provisioning is the capacity the pool will have
	// once cold starts complete (draining replicas are already leaving).
	Active, Provisioning, Draining int
	Committed                      int
	// Capacity is the pool's built replica count: the scale-up ceiling.
	Capacity int
	// QueuedTokens is the outstanding work on the pool's active replicas:
	// prompt backlog for a prefill pool, total remaining tokens otherwise.
	QueuedTokens int
	// ArrivalRate is the offered load in requests/second over the trailing
	// window.
	ArrivalRate float64
	// ServiceRate is the estimated per-replica sustainable service rate in
	// requests/second (peak observed so far; 0 until the first window with
	// finishes calibrates it).
	ServiceRate float64
	// WindowAttainment/WindowTTFTAttainment are the TPOT and TTFT SLO
	// attainment over requests finishing in the trailing window;
	// WindowFinished is their denominator (0 means no signal).
	WindowAttainment     float64
	WindowTTFTAttainment float64
	WindowFinished       int
}

// Utilization estimates the pool's load factor: offered request rate over
// committed service capacity (0 when uncalibrated).
func (s Signals) Utilization() float64 {
	if s.ServiceRate <= 0 || s.Committed == 0 {
		return 0
	}
	return s.ArrivalRate / (s.ServiceRate * float64(s.Committed))
}

// Policy maps observed Signals to the pool's desired committed replica
// count. Implementations must be pure and deterministic: identical Signals
// yield identical desires, so policies are comparable under identical
// traffic. The controller owns all hysteresis (cooldowns, step bounds,
// sustained-headroom counting, min/max clamps, the shared budget).
type Policy interface {
	// Name identifies the policy in reports and events.
	Name() string
	// Desired returns the pool's desired committed replica count; the
	// controller clamps and rate-limits it.
	Desired(sig Signals) int
}

// DefaultQueueTarget is TargetQueue's per-replica queued-token budget: about
// one contended replica's worth of resident work at the evaluated loads, so
// backlog past it means requests are waiting on capacity rather than being
// served.
const DefaultQueueTarget = 2048

// TargetQueue scales to hold queued work near a per-replica target: desired
// replicas = ceil(queued tokens / target). The simplest production policy
// (queue-depth targeting); reacts fast to bursts because backlog is the
// first signal to move, but cannot see SLO pressure that shows up as
// latency before it shows up as queueing.
type TargetQueue struct {
	// TokensPerReplica is the queued-token budget one replica is expected
	// to absorb (0: DefaultQueueTarget).
	TokensPerReplica int
}

// Name implements Policy.
func (TargetQueue) Name() string { return "target-queue" }

// Desired implements Policy.
func (p TargetQueue) Desired(sig Signals) int {
	target := p.TokensPerReplica
	if target <= 0 {
		target = DefaultQueueTarget
	}
	return (sig.QueuedTokens + target - 1) / target
}

// DefaultRateHeadroom is RateProportional's provisioning margin over the
// measured offered load.
const DefaultRateHeadroom = 1.15

// RateProportional scales proportionally to offered load (AIBrix-style):
// desired replicas = ceil(arrival-rate EWMA x headroom / measured
// per-replica service rate). Tracks sustained load shifts (diurnal swells)
// smoothly but lags spikes by the window width; until the first completed
// window calibrates the service rate it holds the fleet steady.
type RateProportional struct {
	// Headroom is the capacity margin over measured load
	// (0: DefaultRateHeadroom).
	Headroom float64
}

// Name implements Policy.
func (RateProportional) Name() string { return "rate-prop" }

// Desired implements Policy.
func (p RateProportional) Desired(sig Signals) int {
	if sig.ServiceRate <= 0 {
		return sig.Committed
	}
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = DefaultRateHeadroom
	}
	return int(math.Ceil(sig.ArrivalRate * headroom / sig.ServiceRate))
}

// Defaults for SLOFeedback: scale up below 95% windowed attainment, scale
// down only under half-utilized capacity.
const (
	DefaultAttainmentTarget = 0.95
	DefaultHeadroomUtil     = 0.5
)

// SLOFeedback scales on the serving outcome itself: one replica up whenever
// windowed SLO attainment (the worse of TPOT and TTFT) drops below target,
// one down under sustained headroom — attainment at target while measured
// utilization sits below the headroom threshold. Closest to what the
// operator actually wants (attainment per dollar), but reacts a window
// later than queue depth moves.
type SLOFeedback struct {
	// Target is the windowed attainment floor (0: DefaultAttainmentTarget).
	Target float64
	// Headroom is the utilization below which capacity is considered idle
	// enough to shrink (0: DefaultHeadroomUtil).
	Headroom float64
}

// Name implements Policy.
func (SLOFeedback) Name() string { return "slo-feedback" }

// Desired implements Policy.
func (p SLOFeedback) Desired(sig Signals) int {
	target := p.Target
	if target <= 0 {
		target = DefaultAttainmentTarget
	}
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = DefaultHeadroomUtil
	}
	if sig.WindowFinished > 0 {
		att := sig.WindowAttainment
		if sig.WindowTTFTAttainment < att {
			att = sig.WindowTTFTAttainment
		}
		if att < target {
			return sig.Committed + 1
		}
	}
	if sig.Utilization() < headroom {
		return sig.Committed - 1
	}
	return sig.Committed
}

// PolicyNames lists the built-in scaling policies accepted by NewPolicy.
func PolicyNames() []string { return []string{"target-queue", "rate-prop", "slo-feedback"} }

// NewPolicy builds a built-in policy by name with default parameters.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "target-queue":
		return TargetQueue{}, nil
	case "rate-prop":
		return RateProportional{}, nil
	case "slo-feedback":
		return SLOFeedback{}, nil
	default:
		return nil, fmt.Errorf("autoscale: unknown policy %q (have %v)", name, PolicyNames())
	}
}
