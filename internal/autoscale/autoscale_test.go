package autoscale

import (
	"strings"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// fakeSys is the minimal sched.System for controller tests (the controller
// reads pools and actuates lifecycle; it never iterates).
type fakeSys struct{ pool *request.Pool }

func newFake() *fakeSys                                 { return &fakeSys{pool: request.NewPool()} }
func (f *fakeSys) Name() string                         { return "fake" }
func (f *fakeSys) Pool() *request.Pool                  { return f.pool }
func (f *fakeSys) Release(*request.Request)             {}
func (f *fakeSys) Iterate(float64) sched.IterationStats { return sched.IterationStats{Idle: true} }

func elasticCluster(t *testing.T, roles []cluster.Role, initial int) *cluster.Cluster {
	t.Helper()
	systems := make([]sched.System, len(roles))
	for i := range systems {
		systems[i] = newFake()
	}
	transfer := gpu.KVTransfer{Model: gpu.Llama1B, Link: gpu.NVLink4}
	cl, err := cluster.NewElastic(systems, roles, cluster.NewRoundRobin(), transfer,
		cluster.ElasticOptions{ColdStart: 0, InitialActive: initial})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mixedRoles(n int) []cluster.Role { return make([]cluster.Role, n) }

// fixedPolicy always wants the same committed count.
type fixedPolicy struct{ want int }

func (fixedPolicy) Name() string          { return "fixed" }
func (p fixedPolicy) Desired(Signals) int { return p.want }

// capturePolicy records the Signals it was asked about.
type capturePolicy struct {
	seen []Signals
	want int
}

func (*capturePolicy) Name() string { return "capture" }
func (p *capturePolicy) Desired(sig Signals) int {
	p.seen = append(p.seen, sig)
	return p.want
}

func TestPolicyDesired(t *testing.T) {
	base := Signals{Committed: 2, Active: 2, Capacity: 4}

	tq := TargetQueue{TokensPerReplica: 100}
	for _, c := range []struct{ queued, want int }{{0, 0}, {1, 1}, {100, 1}, {101, 2}, {1000, 10}} {
		sig := base
		sig.QueuedTokens = c.queued
		if got := tq.Desired(sig); got != c.want {
			t.Errorf("target-queue Desired(queued=%d) = %d, want %d", c.queued, got, c.want)
		}
	}

	rp := RateProportional{Headroom: 1.0}
	sig := base
	sig.ArrivalRate = 9
	if got := rp.Desired(sig); got != 2 {
		t.Errorf("uncalibrated rate-prop moved the fleet: %d", got)
	}
	sig.ServiceRate = 2 // 9 req/s over 2 req/s/replica -> 5 replicas
	if got := rp.Desired(sig); got != 5 {
		t.Errorf("rate-prop Desired = %d, want 5", got)
	}
	if u := sig.Utilization(); u != 9.0/4.0 {
		t.Errorf("utilization %g, want 2.25", u)
	}

	sf := SLOFeedback{Target: 0.9, Headroom: 0.5}
	low := sig
	low.WindowFinished = 10
	low.WindowAttainment = 0.99
	low.WindowTTFTAttainment = 0.5 // the worse signal drives the decision
	if got := sf.Desired(low); got != 3 {
		t.Errorf("slo-feedback under attainment pressure = %d, want committed+1 = 3", got)
	}
	idle := base
	idle.WindowFinished = 10
	idle.WindowAttainment = 1
	idle.WindowTTFTAttainment = 1
	idle.ServiceRate = 10
	idle.ArrivalRate = 1 // utilization 0.05 < 0.5 headroom
	if got := sf.Desired(idle); got != 1 {
		t.Errorf("slo-feedback under headroom = %d, want committed-1 = 1", got)
	}
	busy := idle
	busy.ArrivalRate = 15 // utilization 0.75: healthy and busy
	if got := sf.Desired(busy); got != 2 {
		t.Errorf("slo-feedback steady = %d, want committed = 2", got)
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil || p.Name() != name {
			t.Errorf("NewPolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := NewPolicy("nope"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("unknown policy error = %v", err)
	}
}

func TestNewValidates(t *testing.T) {
	cl := elasticCluster(t, mixedRoles(2), 1)
	if _, err := New(nil, fixedPolicy{1}, Options{}); err == nil {
		t.Error("accepted nil cluster")
	}
	if _, err := New(cl, nil, Options{}); err == nil {
		t.Error("accepted nil policy")
	}
	if _, err := New(cl, fixedPolicy{1}, Options{Interval: -1}); err == nil {
		t.Error("accepted negative interval")
	}
	staticSys := []sched.System{newFake(), newFake()}
	static, err := cluster.New(staticSys, cluster.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(static, fixedPolicy{1}, Options{}); err == nil {
		t.Error("accepted a static cluster")
	}
}

func TestTickPacingAndUpStep(t *testing.T) {
	cl := elasticCluster(t, mixedRoles(4), 1)
	ctrl, err := New(cl, fixedPolicy{4}, Options{Interval: 1, Hysteresis: Hysteresis{UpStep: 1, UpCooldown: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var q serve.Queue
	if acts := ctrl.Tick(0.5, &q); acts != nil {
		t.Fatalf("decision before the first grid instant: %+v", acts)
	}
	acts := ctrl.Tick(1.0, &q)
	if len(acts) != 1 || !acts[0].Up || acts[0].Fleet != 2 || acts[0].Policy != "fixed" {
		t.Fatalf("first decision = %+v, want one scale-up to fleet 2", acts)
	}
	if acts := ctrl.Tick(1.4, &q); acts != nil {
		t.Fatalf("off-grid tick acted: %+v", acts)
	}
	if acts := ctrl.Tick(2.0, &q); len(acts) != 1 {
		t.Fatalf("second grid decision = %+v, want one scale-up (cooldown elapsed)", acts)
	}
	if cl.CommittedFleet() != 3 {
		t.Fatalf("fleet %d after two up-steps, want 3", cl.CommittedFleet())
	}
}

func TestDownStableAndMinClamp(t *testing.T) {
	cl := elasticCluster(t, mixedRoles(3), 3)
	ctrl, err := New(cl, fixedPolicy{0}, Options{Interval: 1,
		Hysteresis: Hysteresis{DownStep: 1, DownStable: 3, DownCooldown: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	var q serve.Queue
	for i, wantActs := range []int{0, 0, 1, 0, 0, 1} {
		now := float64(i + 1)
		acts := ctrl.Tick(now, &q)
		if len(acts) != wantActs {
			t.Fatalf("tick %d: %d actions, want %d", i+1, len(acts), wantActs)
		}
		for _, a := range acts {
			if a.Up {
				t.Fatalf("tick %d scaled up under a zero-desire policy", i+1)
			}
		}
	}
	// Desired 0 clamps to MinPerPool=1, so the fleet never empties.
	if cl.CommittedFleet() != 1 {
		t.Fatalf("fleet %d, want clamped floor 1", cl.CommittedFleet())
	}
	for i := 0; i < 9; i++ {
		ctrl.Tick(float64(10+i), &q)
	}
	if cl.CommittedFleet() != 1 {
		t.Fatalf("fleet shrank below the per-pool floor: %d", cl.CommittedFleet())
	}
}

func TestSharedBudgetPrefillPriority(t *testing.T) {
	roles := []cluster.Role{cluster.RolePrefill, cluster.RolePrefill, cluster.RoleDecode, cluster.RoleDecode}
	cl := elasticCluster(t, roles, 1)
	// Both pools want 2; the shared budget allows only one more replica.
	// Prefill is processed first, so it wins the slot.
	ctrl, err := New(cl, fixedPolicy{2}, Options{Interval: 1,
		Hysteresis: Hysteresis{MaxTotal: 3, UpStep: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var q serve.Queue
	acts := ctrl.Tick(1.0, &q)
	if len(acts) != 1 || acts[0].Role != "prefill" {
		t.Fatalf("budget-constrained decision = %+v, want one prefill scale-up", acts)
	}
	if pp := cl.CountPool(cluster.RolePrefill); pp.Committed() != 2 {
		t.Fatalf("prefill pool committed %d, want 2", pp.Committed())
	}
	if dp := cl.CountPool(cluster.RoleDecode); dp.Committed() != 1 {
		t.Fatalf("decode pool committed %d, want 1 (budget exhausted)", dp.Committed())
	}
}

func TestSignalsFromEvents(t *testing.T) {
	cl := elasticCluster(t, mixedRoles(2), 1)
	pol := &capturePolicy{want: 1}
	ctrl, err := New(cl, pol, Options{Interval: 1, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Four arrivals land in the window; two finish (attaining) before the
	// decision.
	for i := 0; i < 4; i++ {
		arrival := 0.5 + 0.1*float64(i)
		r := request.New(i, request.Chat, 1.0, arrival, 8, 1, uint64(i)+1)
		ctrl.OnEvent(serve.RequestAdmitted{Req: r})
		if i < 2 {
			r.Phase = request.Decoding
			r.PrefillDone = r.PromptLen
			r.FirstDecodeTime = arrival
			r.Commit([]lm.Token{1}, arrival+0.2)
			ctrl.OnEvent(serve.RequestFinished{Req: r, Attained: true})
		}
	}
	var q serve.Queue
	ctrl.Tick(2.0, &q)
	if len(pol.seen) != 1 {
		t.Fatalf("policy consulted %d times, want 1", len(pol.seen))
	}
	sig := pol.seen[0]
	if sig.ArrivalRate != 4/2.0 {
		t.Fatalf("arrival rate %g, want 2 (4 arrivals over the 2s elapsed span)", sig.ArrivalRate)
	}
	if sig.ServiceRate <= 0 {
		t.Fatal("service rate not calibrated from finishes")
	}
	if sig.WindowFinished != 2 {
		t.Fatalf("window finished %d, want 2", sig.WindowFinished)
	}
	if sig.Committed != 1 || sig.Capacity != 2 {
		t.Fatalf("occupancy signals wrong: %+v", sig)
	}

	sum := ctrl.Summary(2.0)
	if sum.Policy != "capture" || sum.Finished != 2 || sum.Attained == 0 {
		t.Fatalf("controller summary wrong: %+v", sum)
	}
}
