package autoscale

import (
	"fmt"

	"adaserve/internal/cluster"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
)

// Defaults for Options and Hysteresis.
const (
	// DefaultInterval is the decision cadence in simulated seconds.
	DefaultInterval = 5.0
	// DefaultUpStep/DefaultDownStep bound replicas added/removed per
	// decision: growth is urgent (a missed spike is lost goodput), shrink is
	// cautious (a mistaken drain pays a cold start to undo).
	DefaultUpStep   = 2
	DefaultDownStep = 1
	// DefaultDownStable is how many consecutive below-capacity decisions a
	// pool must see before it shrinks (sustained headroom, not one quiet
	// window).
	DefaultDownStable = 3
)

// Hysteresis bounds how fast and how far the controller moves the fleet, so
// different policies are comparable under identical traffic: every policy
// feels the same cooldowns, step limits and budget.
type Hysteresis struct {
	// MinPerPool floors each role pool's committed replicas (0: 1 — the
	// cluster must keep serving every capability).
	MinPerPool int
	// MaxTotal caps committed replicas across all pools — the shared
	// hardware budget of a disaggregated fleet (0: the cluster's built
	// capacity).
	MaxTotal int
	// UpStep/DownStep bound replicas added/removed per decision
	// (0: DefaultUpStep/DefaultDownStep).
	UpStep, DownStep int
	// UpCooldown/DownCooldown are the minimum simulated seconds between
	// consecutive actions in the same direction on one pool
	// (0: the decision interval, and 3x it, respectively).
	UpCooldown, DownCooldown float64
	// DownStable is how many consecutive decisions must want fewer replicas
	// before one drains (0: DefaultDownStable).
	DownStable int
}

// Options configures a Controller.
type Options struct {
	// Interval is the decision cadence in simulated seconds
	// (0: DefaultInterval). Decisions land on the interval grid, evaluated
	// at the first iteration boundary past each grid instant.
	Interval float64
	// Window is the trailing-window width for rolling signals
	// (0: serve.DefaultSnapshotWindow).
	Window float64
	// Hysteresis bounds the control loop.
	Hysteresis Hysteresis
}

// poolState is the controller's per-role-pool control state.
type poolState struct {
	role             cluster.Role
	lastUp, lastDown float64
	// lowTicks counts consecutive decisions that wanted fewer replicas.
	lowTicks int
}

// arrival is one admitted request in the offered-load window.
type arrival struct {
	t float64
}

// Controller implements serve.Autoscaler: wire it into a run via
// serve.Options.Autoscaler. It observes the event stream (arrivals, token
// commits, finishes) through rolling windows, and at each interval-grid
// instant asks the Policy for every role pool's desired size, applies
// hysteresis and the shared budget, and actuates the elastic cluster's
// replica lifecycle. All decisions happen at iteration boundaries in
// event-time order, so runs are deterministic under a fixed seed.
//
// Like the cluster it resizes, a Controller is single-use.
type Controller struct {
	cl     *cluster.Cluster
	policy Policy
	opts   Options

	rolling *metrics.Rolling
	pools   []*poolState
	next    float64

	// Offered-load window (head-indexed ring over admitted arrivals).
	arrivals []arrival
	head     int

	// Service-rate calibration: request finishes are counted between
	// decisions; the peak observed per-replica finish rate estimates
	// sustainable capacity.
	finishedInWindow int
	lastDecision     float64
	serviceRate      float64
	billedFleet      int

	scaleUps, scaleDowns int
}

// New builds a controller for an elastic cluster under the given policy.
func New(cl *cluster.Cluster, policy Policy, opts Options) (*Controller, error) {
	if cl == nil {
		return nil, fmt.Errorf("autoscale: cluster required")
	}
	if !cl.Elastic() {
		return nil, fmt.Errorf("autoscale: cluster is static; build it with cluster.NewElastic")
	}
	if policy == nil {
		return nil, fmt.Errorf("autoscale: policy required")
	}
	if opts.Interval < 0 || opts.Window < 0 {
		return nil, fmt.Errorf("autoscale: negative interval or window")
	}
	if opts.Interval == 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Window == 0 {
		opts.Window = serve.DefaultSnapshotWindow
	}
	h := &opts.Hysteresis
	if h.MinPerPool <= 0 {
		h.MinPerPool = 1
	}
	if h.MaxTotal <= 0 {
		h.MaxTotal = cl.Size()
	}
	if h.UpStep <= 0 {
		h.UpStep = DefaultUpStep
	}
	if h.DownStep <= 0 {
		h.DownStep = DefaultDownStep
	}
	if h.UpCooldown <= 0 {
		h.UpCooldown = opts.Interval
	}
	if h.DownCooldown <= 0 {
		h.DownCooldown = 3 * opts.Interval
	}
	if h.DownStable <= 0 {
		h.DownStable = DefaultDownStable
	}
	c := &Controller{
		cl:          cl,
		policy:      policy,
		opts:        opts,
		rolling:     metrics.NewRolling(opts.Window),
		next:        opts.Interval,
		billedFleet: cl.CommittedFleet(),
	}
	// One control pool per role present, in prefill, decode, mixed order:
	// the TTFT-critical stage gets budget priority, and the order is fixed
	// so runs are deterministic.
	for _, role := range []cluster.Role{cluster.RolePrefill, cluster.RoleDecode, cluster.RoleMixed} {
		if cl.CountPool(role).Capacity() > 0 {
			c.pools = append(c.pools, &poolState{role: role})
		}
	}
	return c, nil
}

// Policy returns the controller's scaling policy.
func (c *Controller) Policy() Policy { return c.policy }

// OnEvent implements serve.Observer: it feeds the rolling windows.
func (c *Controller) OnEvent(ev serve.Event) {
	switch e := ev.(type) {
	case serve.RequestAdmitted:
		c.rolling.Arrived(e.Req)
		c.arrivals = append(c.arrivals, arrival{t: e.Req.ArrivalTime})
	case serve.RequestFinished:
		c.rolling.Finished(e.Req)
		c.finishedInWindow++
	}
}

// Tick implements serve.Autoscaler: the driver calls it at every iteration
// boundary. Between grid instants it only sweeps drained replicas; at each
// grid instant it runs one decision round and returns the actions taken.
func (c *Controller) Tick(now float64, q *serve.Queue) []serve.ScaleAction {
	c.cl.SweepDrained()
	if now < c.next {
		return nil
	}
	for c.next <= now {
		c.next += c.opts.Interval
	}
	return c.decide(now, q)
}

// decide runs one decision round over every role pool.
func (c *Controller) decide(now float64, q *serve.Queue) []serve.ScaleAction {
	// Offered load over the trailing window (or the elapsed run, when
	// shorter).
	span := c.opts.Window
	if now < span {
		span = now
	}
	cutoff := now - c.opts.Window
	for c.head < len(c.arrivals) && c.arrivals[c.head].t < cutoff {
		c.head++
	}
	if c.head > len(c.arrivals)/2 {
		// Compact the evicted prefix so the window does not retain every
		// arrival of a long run.
		c.arrivals = append(c.arrivals[:0], c.arrivals[c.head:]...)
		c.head = 0
	}
	arrivalRate := 0.0
	if span > 0 {
		arrivalRate = float64(len(c.arrivals)-c.head) / span
	}
	// Calibrate the per-replica service rate: peak observed finish rate per
	// billed replica since the last decision (decisions can be more than
	// one interval apart when the cluster idles through grid instants, so
	// divide by the real elapsed span). Underestimating capacity only
	// over-provisions, so the peak is the safe side.
	if dt := now - c.lastDecision; dt > 0 && c.finishedInWindow > 0 && c.billedFleet > 0 {
		if rate := float64(c.finishedInWindow) / dt / float64(c.billedFleet); rate > c.serviceRate {
			c.serviceRate = rate
		}
	}
	c.finishedInWindow = 0
	c.lastDecision = now

	st := c.rolling.Snapshot(now, 0, 0)
	var actions []serve.ScaleAction
	h := c.opts.Hysteresis
	for _, ps := range c.pools {
		pc := c.cl.CountPool(ps.role)
		sig := Signals{
			Now:                  now,
			Active:               pc.Active,
			Provisioning:         pc.Provisioning,
			Draining:             pc.Draining,
			Committed:            pc.Active + pc.Provisioning,
			Capacity:             pc.Capacity(),
			QueuedTokens:         c.poolQueuedTokens(ps.role),
			ArrivalRate:          arrivalRate,
			ServiceRate:          c.serviceRate,
			WindowAttainment:     st.WindowAttainment(),
			WindowTTFTAttainment: st.WindowTTFTAttainment(),
			WindowFinished:       st.WindowFinished,
		}
		desired := c.policy.Desired(sig)
		if desired < h.MinPerPool {
			desired = h.MinPerPool
		}
		if desired > pc.Capacity() {
			desired = pc.Capacity()
		}
		committed := sig.Committed
		switch {
		case desired > committed:
			ps.lowTicks = 0
			if now-ps.lastUp < h.UpCooldown && ps.lastUp > 0 {
				break
			}
			step := desired - committed
			if step > h.UpStep {
				step = h.UpStep
			}
			if budget := h.MaxTotal - c.cl.CommittedFleet(); step > budget {
				step = budget
			}
			acted := false
			for i := 0; i < step; i++ {
				rep, ok := c.cl.ScaleUp(ps.role, now, q)
				if !ok {
					break
				}
				acted = true
				c.scaleUps++
				actions = append(actions, serve.ScaleAction{
					Up: true, Instance: rep.ID(), Role: ps.role.String(),
					Policy: c.policy.Name(),
					Reason: fmt.Sprintf("desired %d > committed %d (queued %d tok, %.2f req/s)",
						desired, committed, sig.QueuedTokens, arrivalRate),
					Fleet: c.cl.CommittedFleet(),
				})
			}
			if acted {
				ps.lastUp = now
			}
		case desired < committed:
			ps.lowTicks++
			if ps.lowTicks < h.DownStable || (now-ps.lastDown < h.DownCooldown && ps.lastDown > 0) {
				break
			}
			step := committed - desired
			if step > h.DownStep {
				step = h.DownStep
			}
			acted := false
			for i := 0; i < step; i++ {
				rep, ok := c.cl.ScaleDown(ps.role, now, q)
				if !ok {
					break
				}
				acted = true
				c.scaleDowns++
				actions = append(actions, serve.ScaleAction{
					Up: false, Instance: rep.ID(), Role: ps.role.String(),
					Policy: c.policy.Name(),
					Reason: fmt.Sprintf("desired %d < committed %d (util %.2f, attain %.0f%%)",
						desired, committed, sig.Utilization(), 100*st.WindowAttainment()),
					Fleet: c.cl.CommittedFleet(),
				})
			}
			if acted {
				ps.lastDown = now
				ps.lowTicks = 0
			}
		default:
			ps.lowTicks = 0
		}
	}
	c.billedFleet = c.cl.CommittedFleet()
	return actions
}

// poolQueuedTokens sums outstanding work over the pool's active replicas:
// prompt backlog for a prefill pool (the only work it does), total
// remaining tokens otherwise.
func (c *Controller) poolQueuedTokens(role cluster.Role) int {
	n := 0
	for _, rep := range c.cl.Replicas() {
		if rep.Role() != role || rep.State() != cluster.StateActive {
			continue
		}
		if role == cluster.RolePrefill {
			n += rep.QueuedPrefillTokens()
		} else {
			n += rep.QueuedTokens()
		}
	}
	return n
}

// Summary reports the run's autoscaling economics at simulated time end
// (typically the run's EndTime): the cluster's lifecycle stats stamped with
// the policy name and the request outcomes the controller observed.
func (c *Controller) Summary(end float64) metrics.AutoscaleSummary {
	s := c.cl.LifecycleStats(end)
	s.Policy = c.policy.Name()
	st := c.rolling.Snapshot(end, 0, 0)
	s.Finished = st.Finished
	s.Attained = st.Attained
	s.GoodTokens = st.GoodTokens
	return s
}
