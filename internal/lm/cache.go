package lm

// DefaultDistCacheSize is the default slot count of a model's distribution
// cache. At branch ≈ 16 a filled cache holds a few MB per model; one cache
// per model per engine keeps even a many-worker parallel sweep modest.
const DefaultDistCacheSize = 1 << 12

// distCache is a fixed-size direct-mapped memo of next-token distributions.
//
// Keys are 64-bit context hashes (one per model whose seed shaped the
// distribution), and lookups compare the FULL key pair, so the cache is
// exact: a collision on the slot index evicts, it never aliases. Eviction is
// overwrite-on-collision — no clocks, no lists, nothing to drift; cached and
// uncached runs are byte-identical by construction.
//
// A nil *distCache is a valid, disabled cache (every get misses, put is a
// no-op), which is the reference path for determinism tests.
type distCache struct {
	slots  []distCacheSlot
	mask   uint64
	hits   uint64
	misses uint64
}

type distCacheSlot struct {
	k1, k2 uint64
	full   bool
	dist   Dist
}

// newDistCache builds a cache with at least size slots (rounded up to a
// power of two). size <= 0 returns nil: caching disabled.
func newDistCache(size int) *distCache {
	if size <= 0 {
		return nil
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &distCache{slots: make([]distCacheSlot, n), mask: uint64(n - 1)}
}

// get returns the cached distribution for the key pair, if present.
func (c *distCache) get(k1, k2 uint64) (Dist, bool) {
	if c == nil {
		return Dist{}, false
	}
	s := &c.slots[(k1^k2)&c.mask]
	if s.full && s.k1 == k1 && s.k2 == k2 {
		c.hits++
		return s.dist, true
	}
	c.misses++
	return Dist{}, false
}

// put stores a distribution, evicting whatever occupied the slot.
func (c *distCache) put(k1, k2 uint64, d Dist) {
	if c == nil {
		return
	}
	c.slots[(k1^k2)&c.mask] = distCacheSlot{k1: k1, k2: k2, full: true, dist: d}
}

// stats returns cumulative (hits, misses).
func (c *distCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits, c.misses
}
