package lm

import (
	"math"
	"testing"
	"testing/quick"

	"adaserve/internal/mathutil"
)

func newTarget(t *testing.T) *SyntheticLM {
	t.Helper()
	return MustSyntheticLM("target", 1, 4096, 16, 3.2, 0.02)
}

func TestSyntheticLMConstruction(t *testing.T) {
	cases := []struct {
		vocab, branch   int
		sharpness, tail float64
		ok              bool
	}{
		{4096, 16, 1.6, 0.02, true},
		{1, 1, 1, 0, false},       // vocab too small
		{16, 32, 1, 0, false},     // branch > vocab
		{4096, 16, 1, 1.0, false}, // tail = 1
		{4096, 16, 1, -0.1, false},
		{4096, 16, 0, 0, true}, // uniform is allowed
	}
	for _, c := range cases {
		_, err := NewSyntheticLM("m", 1, c.vocab, c.branch, c.sharpness, c.tail)
		if (err == nil) != c.ok {
			t.Errorf("NewSyntheticLM(%+v): err=%v", c, err)
		}
	}
}

func TestDistNormalized(t *testing.T) {
	m := newTarget(t)
	for i := uint64(0); i < 50; i++ {
		d := m.Dist(Context{ReqSeed: i})
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
}

func TestDistDeterministic(t *testing.T) {
	m := newTarget(t)
	ctx := NewContext(7, []Token{1, 2, 3})
	a := m.Dist(ctx)
	b := m.Dist(ctx)
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestDistDependsOnContext(t *testing.T) {
	m := newTarget(t)
	a := m.Dist(NewContext(7, []Token{1, 2, 3}))
	b := m.Dist(NewContext(7, []Token{1, 2, 4}))
	if a.Argmax() == b.Argmax() {
		// Possible by chance; require at least the candidate sets differ.
		same := true
		for i := range a.Entries {
			if a.Entries[i].Token != b.Entries[i].Token {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different contexts produced identical candidate sets")
		}
	}
}

func TestDistDependsOnSeed(t *testing.T) {
	m := newTarget(t)
	a := m.Dist(Context{ReqSeed: 1})
	b := m.Dist(Context{ReqSeed: 2})
	if a.Argmax() == b.Argmax() && a.Entries[1].Token == b.Entries[1].Token {
		t.Fatal("different request seeds produced identical top entries")
	}
}

func TestHistoryWindowLimits(t *testing.T) {
	m := newTarget(t)
	long := make([]Token, 64)
	for i := range long {
		long[i] = Token(i)
	}
	a := m.Dist(NewContext(5, long))
	// Changing a token OUTSIDE the window must not change the distribution.
	long2 := append([]Token(nil), long...)
	long2[0] = 999
	b := m.Dist(NewContext(5, long2))
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("token outside history window changed the distribution")
		}
	}
	// Changing a token INSIDE the window must change it.
	long3 := append([]Token(nil), long...)
	long3[len(long3)-1] = 999
	c := m.Dist(NewContext(5, long3))
	if a.Argmax() == c.Argmax() && a.Entries[1].Token == c.Entries[1].Token {
		t.Fatal("token inside history window did not change the distribution")
	}
}

func TestDistProbAndTopK(t *testing.T) {
	m := newTarget(t)
	d := m.Dist(Context{ReqSeed: 3})
	top := d.TopK(4)
	if len(top) != 4 {
		t.Fatalf("TopK(4) returned %d entries", len(top))
	}
	if top[0].Token != d.Argmax() {
		t.Fatal("TopK[0] != Argmax")
	}
	if got := d.Prob(top[0].Token); got != top[0].Prob {
		t.Fatalf("Prob(top) = %g, want %g", got, top[0].Prob)
	}
	if d.TopK(100)[0] != top[0] {
		t.Fatal("oversized TopK should clip")
	}
	// Tail token probability is tiny but nonzero.
	var missing Token
	for tok := Token(0); ; tok++ {
		if d.Prob(tok) < 1e-4 {
			missing = tok
			break
		}
	}
	if p := d.Prob(missing); p <= 0 || p > 1e-4 {
		t.Fatalf("tail token prob %g", p)
	}
}

func TestDistSampleMatchesProbabilities(t *testing.T) {
	m := newTarget(t)
	d := m.Dist(Context{ReqSeed: 11})
	rng := mathutil.NewRNG(99)
	counts := make(map[Token]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	top := d.Entries[0]
	got := float64(counts[top.Token]) / n
	if math.Abs(got-top.Prob) > 0.01 {
		t.Fatalf("top token sampled %.3f, want %.3f", got, top.Prob)
	}
	second := d.Entries[1]
	got2 := float64(counts[second.Token]) / n
	if math.Abs(got2-second.Prob) > 0.01 {
		t.Fatalf("second token sampled %.3f, want %.3f", got2, second.Prob)
	}
}

func TestSharpnessControlsTopProbability(t *testing.T) {
	soft := MustSyntheticLM("soft", 1, 4096, 16, 1.0, 0.02)
	sharp := MustSyntheticLM("sharp", 1, 4096, 16, 3.2, 0.02)
	var softTop, sharpTop float64
	for i := uint64(0); i < 100; i++ {
		softTop += soft.Dist(Context{ReqSeed: i}).Entries[0].Prob
		sharpTop += sharp.Dist(Context{ReqSeed: i}).Entries[0].Prob
	}
	if sharpTop <= softTop {
		t.Fatal("sharper model should concentrate more mass on the argmax")
	}
	if avg := sharpTop / 100; avg < 0.7 || avg > 0.95 {
		t.Fatalf("sharp top-1 prob %.2f outside calibrated band [0.7,0.95]", avg)
	}
}

func TestContextExtendImmutable(t *testing.T) {
	ctx := NewContext(1, []Token{1, 2})
	ext := ctx.Extend(3)
	if ctx.WindowLen() != 2 {
		t.Fatal("Extend mutated the original context")
	}
	if w := ext.Window(); len(w) != 3 || w[2] != 3 {
		t.Fatalf("Extend result wrong: %v", w)
	}
	// Extending the original again must not corrupt ext.
	_ = ctx.Extend(9)
	if ext.Window()[2] != 3 {
		t.Fatal("sibling Extend corrupted earlier extension")
	}
}

func TestContextWindowSlides(t *testing.T) {
	ctx := NewContext(1, nil)
	for i := Token(0); i < 10; i++ {
		ctx = ctx.Extend(i)
	}
	want := []Token{6, 7, 8, 9}
	got := ctx.Window()
	if len(got) != HistoryWindow {
		t.Fatalf("window length %d, want %d", len(got), HistoryWindow)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %v, want %v", got, want)
		}
	}
	// NewContext over the full history and the incrementally extended
	// context must agree (and hash identically).
	full := make([]Token, 10)
	for i := range full {
		full[i] = Token(i)
	}
	if NewContext(1, full) != ctx {
		t.Fatal("NewContext(full history) differs from incremental Extend")
	}
}

func TestDraftAlphaBounds(t *testing.T) {
	target := newTarget(t)
	if _, err := NewDraftLM("d", target, -0.1, 1); err == nil {
		t.Error("alpha < 0 accepted")
	}
	if _, err := NewDraftLM("d", target, 1.1, 1); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewDraftLM("d", target, 0.5, 1); err != nil {
		t.Errorf("alpha 0.5 rejected: %v", err)
	}
}

func TestDraftPerfectAlignment(t *testing.T) {
	target := newTarget(t)
	draft := MustDraftLM("d", target, 1.0, 2)
	for i := uint64(0); i < 20; i++ {
		ctx := Context{ReqSeed: i}
		p := target.Dist(ctx)
		q := draft.Dist(ctx)
		for j := range p.Entries {
			if p.Entries[j] != q.Entries[j] {
				t.Fatalf("alpha=1 draft differs from target at seed %d", i)
			}
		}
	}
}

func TestDraftAgreementRate(t *testing.T) {
	target := newTarget(t)
	for _, alpha := range []float64{0.5, 0.8, 0.9} {
		draft := MustDraftLM("d", target, alpha, 7)
		agree := 0
		const n = 5000
		for i := uint64(0); i < n; i++ {
			ctx := Context{ReqSeed: i}
			if target.Dist(ctx).Argmax() == draft.Dist(ctx).Argmax() {
				agree++
			}
		}
		got := float64(agree) / n
		if math.Abs(got-alpha) > 0.03 {
			t.Errorf("alpha=%.1f: argmax agreement %.3f", alpha, got)
		}
	}
}

func TestDraftMistakesAreNearMisses(t *testing.T) {
	target := newTarget(t)
	draft := MustDraftLM("d", target, 0.0, 7) // disagree everywhere
	nearMiss := 0
	const n = 2000
	for i := uint64(0); i < n; i++ {
		ctx := Context{ReqSeed: i}
		p := target.Dist(ctx)
		q := draft.Dist(ctx)
		// The target's argmax should usually be within the draft's top 3.
		for _, e := range q.TopK(3) {
			if e.Token == p.Argmax() {
				nearMiss++
				break
			}
		}
	}
	if frac := float64(nearMiss) / n; frac < 0.70 {
		t.Fatalf("target argmax within draft top-3 only %.2f of mistaken contexts", frac)
	}
}

func TestDraftDistNormalized(t *testing.T) {
	target := newTarget(t)
	draft := MustDraftLM("d", target, 0.7, 3)
	err := quick.Check(func(seed uint64, toks []uint8) bool {
		hist := make([]Token, len(toks))
		for i, b := range toks {
			hist[i] = Token(b)
		}
		d := draft.Dist(NewContext(seed, hist))
		return d.Validate() == nil
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistValidateCatchesBadDists(t *testing.T) {
	bad := Dist{Entries: []TokenProb{{Token: 1, Prob: 0.5}, {Token: 2, Prob: 0.6}}, Tail: 0, Vocab: 10}
	if bad.Validate() == nil {
		t.Error("unsorted dist validated")
	}
	bad2 := Dist{Entries: []TokenProb{{Token: 1, Prob: 0.5}}, Tail: 0, Vocab: 10}
	if bad2.Validate() == nil {
		t.Error("non-normalized dist validated")
	}
	bad3 := Dist{Entries: []TokenProb{{Token: 1, Prob: -0.5}, {Token: 2, Prob: 1.5}}, Tail: 0, Vocab: 10}
	if bad3.Validate() == nil {
		t.Error("negative prob validated")
	}
}
