package lm

import (
	"fmt"
	"sort"

	"adaserve/internal/mathutil"
)

// VerifyRule selects the acceptance criterion used during verification.
type VerifyRule int

const (
	// RuleSampleMatch is the default: at each tree position the target
	// samples its token y ~ p and accepts the branch whose token equals y
	// (the correction token is y itself when no branch matches). The output
	// sequence is therefore always distributed exactly as the target's
	// sampling — lossless by construction — and the acceptance probability
	// of a branch is exactly p(branch), so the draft's path products
	// (Eq. 7) are calibrated estimates of the paper's f(v). This matches
	// the paper's formulation, where f(v) is "the probability in which the
	// LLM accepts the path".
	RuleSampleMatch VerifyRule = iota
	// RuleGreedy accepts a branch iff it equals the target argmax; the
	// correction token is the argmax. Deterministic; used in ablations.
	RuleGreedy
	// RuleRejection is multi-branch rejection sampling (SpecInfer-style):
	// draft token x is accepted with probability min(1, p(x)/q(x)) against
	// the running residual of the target distribution; if every branch is
	// rejected the correction token is drawn from the final residual.
	// Provided for ablations: with top-k (rather than sampled) drafting it
	// over-accepts high-rank tokens relative to the f(v) estimates.
	RuleRejection
)

// String implements fmt.Stringer.
func (r VerifyRule) String() string {
	switch r {
	case RuleSampleMatch:
		return "sample-match"
	case RuleGreedy:
		return "greedy"
	case RuleRejection:
		return "rejection"
	default:
		return fmt.Sprintf("VerifyRule(%d)", int(r))
	}
}

// Verifier applies the target model's acceptance rule at one tree position.
// It is the only component that consumes target-model distributions during
// decoding, mirroring how verification is the only point a real system
// queries the LLM.
type Verifier struct {
	Target Model
	Draft  Model
	Rule   VerifyRule
	RNG    *mathutil.RNG
}

// NewVerifier builds a verifier; rng drives stochastic acceptance and must
// be dedicated to this verifier for reproducibility.
func NewVerifier(target, draft Model, rule VerifyRule, rng *mathutil.RNG) *Verifier {
	return &Verifier{Target: target, Draft: draft, Rule: rule, RNG: rng}
}

// Branch is one candidate child during verification, in draft-tree order.
type Branch struct {
	Token Token
}

// AcceptAmong decides which (if any) of the candidate branches the target
// accepts at context ctx.
//
// It returns the index of the accepted branch, or -1 and a correction token
// drawn per the active rule when all branches are rejected. The branch order
// matters for the stochastic rule (earlier branches get first claim on the
// target mass), so callers should order branches by descending draft
// probability, as AdaServe's selection phases do.
func (v *Verifier) AcceptAmong(ctx Context, branches []Branch) (int, Token) {
	p := v.Target.Dist(ctx)
	switch v.Rule {
	case RuleGreedy:
		top := p.Argmax()
		for i, b := range branches {
			if b.Token == top {
				return i, 0
			}
		}
		return -1, top
	case RuleSampleMatch:
		y := p.Sample(v.RNG)
		for i, b := range branches {
			if b.Token == y {
				return i, 0
			}
		}
		return -1, y
	case RuleRejection:
		return v.acceptRejection(ctx, p, branches)
	default:
		panic(fmt.Sprintf("lm: unknown verify rule %d", int(v.Rule)))
	}
}

// acceptRejection runs multi-round rejection sampling across the branches.
func (v *Verifier) acceptRejection(ctx Context, p Dist, branches []Branch) (int, Token) {
	q := v.Draft.Dist(ctx)
	// residual starts as the target distribution over the union support.
	res := newResidual(p)
	for i, b := range branches {
		qx := q.Prob(b.Token)
		px := res.prob(b.Token, p)
		var acceptProb float64
		if qx <= 0 {
			// The draft claims zero mass yet proposed the token (can happen
			// for tail tokens); accept with the target's residual mass.
			acceptProb = px
		} else {
			acceptProb = px / qx
			if acceptProb > 1 {
				acceptProb = 1
			}
		}
		if v.RNG.Float64() < acceptProb {
			return i, 0
		}
		res.subtract(b.Token, q, p)
	}
	return -1, res.sample(v.RNG, p)
}

// residual tracks the adjusted target distribution max(p − Σq, 0),
// renormalized lazily, over the union of explicit supports.
type residual struct {
	probs map[Token]float64
	tail  float64
	total float64
}

func newResidual(p Dist) *residual {
	r := &residual{probs: make(map[Token]float64, len(p.Entries)), tail: p.Tail}
	for _, e := range p.Entries {
		r.probs[e.Token] = e.Prob
	}
	r.total = mathutilSumMap(r.probs) + r.tail
	return r
}

func (r *residual) prob(tok Token, p Dist) float64 {
	if r.total <= 0 {
		return 0
	}
	pr, ok := r.probs[tok]
	if !ok {
		// Token only in tail region; approximate its residual share.
		if p.Vocab > len(r.probs) {
			pr = r.tail / float64(p.Vocab-len(r.probs))
		}
	}
	return pr / r.total
}

// subtract removes the draft distribution's mass at tok (standard
// speculative-sampling residual update, applied pointwise at the rejected
// token: res(x) ← max(res(x) − q(x), 0)).
func (r *residual) subtract(tok Token, q, p Dist) {
	qx := q.Prob(tok)
	cur, ok := r.probs[tok]
	if !ok {
		cur = 0
		if p.Vocab > len(r.probs) {
			cur = r.tail / float64(p.Vocab-len(r.probs))
		}
	}
	next := cur - qx
	if next < 0 {
		next = 0
	}
	r.probs[tok] = next
	r.total = mathutilSumMap(r.probs) + r.tail
}

// sample draws from the normalized residual.
func (r *residual) sample(rng *mathutil.RNG, p Dist) Token {
	if r.total <= 0 {
		return p.Argmax()
	}
	toks := make([]Token, 0, len(r.probs))
	for t := range r.probs {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	u := rng.Float64() * r.total
	var acc float64
	for _, t := range toks {
		acc += r.probs[t]
		if u < acc {
			return t
		}
	}
	// Tail region.
	if p.Vocab > 0 {
		return Token(rng.Intn(p.Vocab))
	}
	return p.Argmax()
}

func mathutilSumMap(m map[Token]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
