package lm

import (
	"testing"

	"adaserve/internal/mathutil"
)

// FuzzDistSample fuzzes Dist.Sample and the tail-sampling path, seeded from
// the PR 2 tail-fallback bug: the old fallback mapped tail draws onto
// candidate tokens, double-counting their mass on top of their explicit
// entries. The invariants: every sampled token is in-vocabulary, a draw that
// lands in the tail never returns a candidate token (when non-candidate
// tokens exist), and total probability mass over the vocabulary is
// conserved.
func FuzzDistSample(f *testing.F) {
	// The bug's shape: a candidate set covering most of the vocabulary, so
	// the rank-remap in sampleTail has few free tokens to land on.
	f.Add(uint64(1), uint16(8), uint16(7), uint16(320), uint16(2), uint8(64))
	// Degenerate: candidates cover the whole vocabulary — no tail tokens
	// exist and the fallback branch must engage.
	f.Add(uint64(7), uint16(4), uint16(4), uint16(160), uint16(0), uint8(64))
	// Heavy tail: most draws land outside the candidate set.
	f.Add(uint64(3), uint16(64), uint16(2), uint16(100), uint16(90), uint8(64))
	// Minimal vocabulary.
	f.Add(uint64(9), uint16(2), uint16(1), uint16(50), uint16(10), uint8(8))

	f.Fuzz(func(t *testing.T, seed uint64, vocabRaw, branchRaw, sharpRaw, tailRaw uint16, draws uint8) {
		vocab := 2 + int(vocabRaw%127)     // [2, 128]
		branch := 1 + int(branchRaw)%vocab // [1, vocab]
		sharpness := 0.5 + float64(sharpRaw%400)/100.0
		tail := float64(tailRaw%100) / 100.0 // [0, 0.99]
		m, err := NewSyntheticLM("fuzz", seed, vocab, branch, sharpness, tail)
		if err != nil {
			t.Fatalf("construction rejected in-range parameters: %v", err)
		}
		ctx := NewContext(seed^0xabcd, []Token{Token(seed % uint64(vocab))})
		d := m.Dist(ctx)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		inCandidates := func(tok Token) bool {
			for _, e := range d.Entries {
				if e.Token == tok {
					return true
				}
			}
			return false
		}

		// Mass conservation over the whole vocabulary: candidate mass plus
		// per-token tail shares must sum to 1. A double-counted candidate
		// would push this above 1.
		var mass float64
		for tok := 0; tok < vocab; tok++ {
			mass += d.Prob(Token(tok))
		}
		if vocab == len(d.Entries) {
			// No tail tokens exist: the tail mass is unreachable by Prob.
			mass += d.Tail
		}
		if mass < 0.999 || mass > 1.001 {
			t.Fatalf("probability mass over vocab sums to %g", mass)
		}

		rng := mathutil.NewRNG(mathutil.Hash2(seed, uint64(draws)+1))
		free := vocab - len(d.Entries)
		for i := 0; i < int(draws)+1; i++ {
			tok := d.Sample(rng)
			if tok < 0 || int(tok) >= vocab {
				t.Fatalf("sampled out-of-vocabulary token %d (vocab %d)", tok, vocab)
			}
			// Exercise the tail path directly: a tail draw must never land
			// on a candidate (that would double-count its mass), except in
			// the degenerate no-free-token fallback.
			tt := d.sampleTail(rng)
			if int(tt) >= vocab || tt < 0 {
				t.Fatalf("tail-sampled out-of-vocabulary token %d (vocab %d)", tt, vocab)
			}
			if free > 0 && inCandidates(tt) {
				t.Fatalf("tail draw returned candidate token %d: candidate mass double-counted", tt)
			}
			if free == 0 && !inCandidates(tt) {
				t.Fatalf("degenerate fallback returned unknown token %d", tt)
			}
		}
	})
}
