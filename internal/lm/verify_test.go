package lm

import (
	"math"
	"testing"

	"adaserve/internal/mathutil"
)

func newPair(t *testing.T, alpha float64) (*SyntheticLM, *DraftLM) {
	t.Helper()
	target := MustSyntheticLM("target", 1, 4096, 16, 3.2, 0.02)
	draft := MustDraftLM("draft", target, alpha, 2)
	return target, draft
}

func TestRuleString(t *testing.T) {
	if RuleSampleMatch.String() != "sample-match" ||
		RuleGreedy.String() != "greedy" ||
		RuleRejection.String() != "rejection" {
		t.Fatal("rule names wrong")
	}
	if VerifyRule(99).String() == "" {
		t.Fatal("unknown rule should still render")
	}
}

func TestGreedyRuleAcceptsArgmax(t *testing.T) {
	target, draft := newPair(t, 1.0)
	v := NewVerifier(target, draft, RuleGreedy, mathutil.NewRNG(1))
	ctx := Context{ReqSeed: 5}
	top := target.Dist(ctx).Argmax()
	idx, _ := v.AcceptAmong(ctx, []Branch{{Token: top}})
	if idx != 0 {
		t.Fatal("greedy rule rejected the argmax")
	}
	idx, corr := v.AcceptAmong(ctx, []Branch{{Token: top + 1}})
	if idx != -1 || corr != top {
		t.Fatalf("greedy rule should reject non-argmax and correct to argmax; got idx=%d corr=%d", idx, corr)
	}
}

func TestSampleMatchAcceptanceIsCalibrated(t *testing.T) {
	// The acceptance probability of a branch must equal the target's
	// probability of that token — the calibration property that makes the
	// draft's f(v) estimates meaningful (paper Eq. 7).
	target, draft := newPair(t, 1.0)
	v := NewVerifier(target, draft, RuleSampleMatch, mathutil.NewRNG(1))
	ctx := Context{ReqSeed: 9}
	p := target.Dist(ctx)
	branch := p.Entries[0]
	accepted := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if idx, _ := v.AcceptAmong(ctx, []Branch{{Token: branch.Token}}); idx == 0 {
			accepted++
		}
	}
	got := float64(accepted) / n
	if math.Abs(got-branch.Prob) > 0.01 {
		t.Fatalf("acceptance rate %.3f, want p(token) = %.3f", got, branch.Prob)
	}
}

func TestSampleMatchMultiBranchCoverage(t *testing.T) {
	// With all candidate tokens as branches, acceptance covers 1 − tail.
	target, draft := newPair(t, 1.0)
	v := NewVerifier(target, draft, RuleSampleMatch, mathutil.NewRNG(1))
	ctx := Context{ReqSeed: 13}
	p := target.Dist(ctx)
	branches := make([]Branch, len(p.Entries))
	for i, e := range p.Entries {
		branches[i] = Branch{Token: e.Token}
	}
	accepted := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if idx, _ := v.AcceptAmong(ctx, branches); idx >= 0 {
			accepted++
		}
	}
	got := float64(accepted) / n
	want := 1 - p.Tail
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("full-branch acceptance %.3f, want %.3f", got, want)
	}
}

func TestSampleMatchCorrectionDistribution(t *testing.T) {
	// The correction token is a true sample from p: over many rejections
	// with no branches, frequencies track the distribution.
	target, draft := newPair(t, 1.0)
	v := NewVerifier(target, draft, RuleSampleMatch, mathutil.NewRNG(1))
	ctx := Context{ReqSeed: 17}
	p := target.Dist(ctx)
	counts := make(map[Token]int)
	const n = 100000
	for i := 0; i < n; i++ {
		_, corr := v.AcceptAmong(ctx, nil)
		counts[corr]++
	}
	top := p.Entries[0]
	got := float64(counts[top.Token]) / n
	if math.Abs(got-top.Prob) > 0.01 {
		t.Fatalf("correction emitted top token %.3f of the time, want %.3f", got, top.Prob)
	}
}

func TestRejectionRuleLosslessOnPerfectDraft(t *testing.T) {
	// With q == p, rejection sampling accepts the first branch whenever it
	// carries positive residual mass (min(1, p/q) = 1).
	target, draft := newPair(t, 1.0)
	v := NewVerifier(target, draft, RuleRejection, mathutil.NewRNG(1))
	ctx := Context{ReqSeed: 21}
	top := target.Dist(ctx).Argmax()
	for i := 0; i < 100; i++ {
		idx, _ := v.AcceptAmong(ctx, []Branch{{Token: top}})
		if idx != 0 {
			t.Fatal("rejection rule with q=p should always accept the proposal")
		}
	}
}

func TestRejectionRuleRejectsOverconfidentDraft(t *testing.T) {
	// A draft token with q >> p must be rejected some of the time.
	target, _ := newPair(t, 1.0)
	draft := MustDraftLM("bad", target, 0.0, 99) // always mistaken
	v := NewVerifier(target, draft, RuleRejection, mathutil.NewRNG(1))
	rejected := 0
	const n = 2000
	for i := uint64(0); i < n; i++ {
		ctx := Context{ReqSeed: i}
		wrongTop := draft.Dist(ctx).Argmax()
		if wrongTop == target.Dist(ctx).Argmax() {
			continue // swap was a no-op for this context
		}
		if idx, _ := v.AcceptAmong(ctx, []Branch{{Token: wrongTop}}); idx < 0 {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("overconfident wrong drafts were never rejected")
	}
}

func TestVerifierDeterministicGivenSeed(t *testing.T) {
	target, draft := newPair(t, 0.8)
	run := func() []int {
		v := NewVerifier(target, draft, RuleSampleMatch, mathutil.NewRNG(55))
		out := make([]int, 0, 100)
		for i := uint64(0); i < 100; i++ {
			ctx := Context{ReqSeed: i}
			top := draft.Dist(ctx).Argmax()
			idx, _ := v.AcceptAmong(ctx, []Branch{{Token: top}})
			out = append(out, idx)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verification not reproducible at step %d", i)
		}
	}
}

func TestChainAcceptanceBand(t *testing.T) {
	// End-to-end acceptance calibration: a greedy draft chain of depth 6
	// should land in the per-level acceptance band the experiments assume
	// (per-level ~0.6-0.8 given alpha=0.88 and the sharp target).
	target, draft := newPair(t, 0.88)
	v := NewVerifier(target, draft, RuleSampleMatch, mathutil.NewRNG(7))
	var totalAccepted, chains int
	for i := uint64(0); i < 500; i++ {
		ctx := Context{ReqSeed: i}
		cur := ctx
		accepted := 0
		for depth := 0; depth < 6; depth++ {
			tok := draft.Dist(cur).Argmax()
			idx, _ := v.AcceptAmong(cur, []Branch{{Token: tok}})
			if idx < 0 {
				break
			}
			accepted++
			cur = cur.Extend(tok)
		}
		totalAccepted += accepted
		chains++
	}
	mean := float64(totalAccepted) / float64(chains)
	if mean < 1.2 || mean > 3.5 {
		t.Fatalf("mean accepted chain prefix %.2f outside calibrated band [1.2, 3.5]", mean)
	}
}
