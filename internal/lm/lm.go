// Package lm provides the synthetic language models the simulator serves.
//
// A real serving system observes its LLM through exactly two channels: the
// cost of a forward pass (modeled in internal/gpu) and the token-level
// accept/reject behaviour during speculative verification. This package
// reproduces the second channel with a deterministic, seedable synthetic
// autoregressive model:
//
//   - The target model assigns every context a next-token distribution
//     derived from a hash of the recent tokens, with Zipf-shaped mass over a
//     small candidate set (real LLM next-token distributions are similarly
//     concentrated).
//   - The draft model is an alpha-mixture of the target distribution and an
//     independent "mistake" distribution, so draft/target alignment — the
//     single statistic that governs speculation acceptance rates — is a
//     tunable scalar calibrated against the paper's Figure 12.
//
// Everything is deterministic given (model seed, request seed, context), so
// experiments replay exactly.
//
// Hot-path design: the next-token distribution is a pure function of the
// 64-bit context hash, so both models memoize distributions behind a
// fixed-size direct-mapped cache keyed on that hash (exact — entries are
// validated by full key comparison, never by slot alone). Context itself is
// a small value type carrying only the HistoryWindow-sized suffix that
// conditions the distribution, so extending a context allocates nothing.
// Models are NOT safe for concurrent use: give each goroutine its own
// engine/models, as the parallel experiment runner does.
package lm

import (
	"fmt"
	"sort"

	"adaserve/internal/mathutil"
)

// Token is a vocabulary item. Valid tokens are in [0, VocabSize).
type Token int32

// TokenProb pairs a token with its probability under some distribution.
type TokenProb struct {
	Token Token
	Prob  float64
}

// Dist is a truncated next-token distribution: explicit probabilities for a
// small candidate set plus Tail mass smeared uniformly over the rest of the
// vocabulary. Entries are sorted by descending probability.
//
// Distributions returned by the models may be shared (cached); callers must
// treat Entries as read-only.
type Dist struct {
	Entries []TokenProb
	// Tail is the probability mass not covered by Entries.
	Tail float64
	// Vocab is the vocabulary size (for tail token sampling).
	Vocab int

	// byTok, when non-nil, holds Entries sorted by ascending token: the
	// index that turns Prob into a binary search. Model-produced
	// distributions always carry it; hand-built literals fall back to a
	// linear scan.
	byTok []TokenProb
}

// Indexed returns a copy of d carrying the sorted-by-token lookup index used
// by Prob. Model-produced distributions are already indexed. The sort is an
// insertion sort: candidate sets are small and this is the only allocation
// site on a cache miss, so it must not drag reflection scaffolding along.
func (d Dist) Indexed() Dist {
	bt := make([]TokenProb, len(d.Entries))
	copy(bt, d.Entries)
	for i := 1; i < len(bt); i++ {
		for j := i; j > 0 && bt[j].Token < bt[j-1].Token; j-- {
			bt[j], bt[j-1] = bt[j-1], bt[j]
		}
	}
	d.byTok = bt
	return d
}

// Validate checks that the distribution is normalized and sorted.
func (d Dist) Validate() error {
	var s float64
	prev := 1.1
	for _, e := range d.Entries {
		if e.Prob < 0 {
			return fmt.Errorf("lm: negative probability %g", e.Prob)
		}
		if e.Prob > prev+1e-12 {
			return fmt.Errorf("lm: entries not sorted descending")
		}
		prev = e.Prob
		s += e.Prob
	}
	s += d.Tail
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("lm: distribution sums to %g", s)
	}
	return nil
}

// Prob returns the probability of tok under d: a binary search over the
// token-sorted index when present, else a linear scan of the candidate set.
func (d Dist) Prob(tok Token) float64 {
	if d.byTok != nil {
		lo, hi := 0, len(d.byTok)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if d.byTok[mid].Token < tok {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(d.byTok) && d.byTok[lo].Token == tok {
			return d.byTok[lo].Prob
		}
	} else {
		for _, e := range d.Entries {
			if e.Token == tok {
				return e.Prob
			}
		}
	}
	if d.Vocab <= len(d.Entries) {
		return 0
	}
	return d.Tail / float64(d.Vocab-len(d.Entries))
}

// TopK returns up to k highest-probability entries.
func (d Dist) TopK(k int) []TokenProb {
	if k > len(d.Entries) {
		k = len(d.Entries)
	}
	out := make([]TokenProb, k)
	copy(out, d.Entries[:k])
	return out
}

// Argmax returns the most likely token.
func (d Dist) Argmax() Token {
	if len(d.Entries) == 0 {
		return 0
	}
	return d.Entries[0].Token
}

// Sample draws a token from d using rng.
func (d Dist) Sample(rng *mathutil.RNG) Token {
	u := rng.Float64()
	var acc float64
	for _, e := range d.Entries {
		acc += e.Prob
		if u < acc {
			return e.Token
		}
	}
	return d.sampleTail(rng)
}

// sampleTail draws uniformly over the NON-candidate tokens: the tail mass
// belongs exclusively to tokens outside the candidate set, so a draw that
// landed in the tail must never return a candidate (returning one would
// double-count its mass on top of its explicit entry).
func (d Dist) sampleTail(rng *mathutil.RNG) Token {
	free := d.Vocab - len(d.Entries)
	if free <= 0 {
		// No non-candidate tokens exist (or the distribution is degenerate):
		// fall back to the least likely candidate.
		if len(d.Entries) > 0 {
			return d.Entries[len(d.Entries)-1].Token
		}
		return 0
	}
	r := Token(rng.Intn(free))
	// The result is the r-th smallest non-candidate v, the least fixpoint of
	// v = r + #(candidates <= v); iterate from r (converges in at most
	// len(Entries)+1 rounds, no sorted order needed).
	v := r
	for {
		cnt := Token(0)
		for _, e := range d.Entries {
			if e.Token <= v {
				cnt++
			}
		}
		if r+cnt == v {
			return v
		}
		v = r + cnt
	}
}

// HistoryWindow is how many trailing tokens condition the next-token
// distribution.
const HistoryWindow = 4

// Context identifies a decoding position: the request's own seed (so two
// requests with identical recent tokens still have independent text) plus
// the trailing HistoryWindow tokens of the generated history (an order-n
// Markov approximation — only the window conditions the distribution, so
// only the window is stored). Context is a small value type: Extend never
// allocates, and contexts compare with ==.
type Context struct {
	ReqSeed uint64
	// win holds the most recent min(n, HistoryWindow) history tokens, oldest
	// first.
	win [HistoryWindow]Token
	// n is the number of valid tokens in win.
	n uint8
}

// NewContext builds a context from a request seed and a full (or partial)
// generated history; only the trailing HistoryWindow tokens are retained.
func NewContext(seed uint64, hist []Token) Context {
	c := Context{ReqSeed: seed}
	start := len(hist) - HistoryWindow
	if start < 0 {
		start = 0
	}
	for _, t := range hist[start:] {
		c.win[c.n] = t
		c.n++
	}
	return c
}

// Extend returns a context with one more history token appended. Pure value
// semantics: the receiver is unchanged and nothing is allocated.
func (c Context) Extend(tok Token) Context {
	if int(c.n) < HistoryWindow {
		c.win[c.n] = tok
		c.n++
		return c
	}
	copy(c.win[:], c.win[1:])
	c.win[HistoryWindow-1] = tok
	return c
}

// Window returns a copy of the retained history window, oldest first.
func (c Context) Window() []Token {
	return append([]Token(nil), c.win[:c.n]...)
}

// WindowLen returns how many history tokens the context retains
// (min(history length, HistoryWindow)).
func (c Context) WindowLen() int { return int(c.n) }

// hash folds the request seed and trailing window into one 64-bit value.
func (c Context) hash(salt uint64) uint64 {
	h := mathutil.Hash2(c.ReqSeed, salt)
	for _, t := range c.win[:c.n] {
		h = mathutil.Hash2(h, uint64(t)+0x1000)
	}
	return h
}

// Model is a synthetic autoregressive language model.
type Model interface {
	// Dist returns the next-token distribution for ctx.
	Dist(ctx Context) Dist
	// Vocab returns the vocabulary size.
	Vocab() int
	// Name identifies the model in logs and metrics.
	Name() string
}

// SyntheticLM is the target ("large") model.
type SyntheticLM struct {
	name string
	seed uint64
	// vocab is the vocabulary size.
	vocab int
	// branch is the candidate-set size per context.
	branch int
	// weights are the Zipf weights shared by every context (the permutation
	// of which tokens get them is context-dependent).
	weights []float64
	// tail is the mass reserved outside the candidate set.
	tail float64
	// strictOrder reports that weights are strictly decreasing, which lets
	// DraftLM rebuild mistaken distributions by swapping token positions
	// instead of sorting.
	strictOrder bool
	// cache memoizes hash -> distribution (nil when disabled).
	cache *distCache
}

// NewSyntheticLM constructs a target model.
//
//   - vocab: vocabulary size (e.g. 4096; the serving layer never enumerates it).
//   - branch: candidate tokens per context (e.g. 16).
//   - sharpness: Zipf exponent; higher concentrates mass on the top token.
//     sharpness ≈ 1.6 yields top-1 probability ≈ 0.6, typical of instruct
//     LLMs under greedy-ish sampling.
//   - tail: probability mass outside the candidate set (e.g. 0.02).
func NewSyntheticLM(name string, seed uint64, vocab, branch int, sharpness, tail float64) (*SyntheticLM, error) {
	if vocab < 2 || branch < 1 || branch > vocab {
		return nil, fmt.Errorf("lm: bad vocab/branch %d/%d", vocab, branch)
	}
	if tail < 0 || tail >= 1 {
		return nil, fmt.Errorf("lm: tail %g out of [0,1)", tail)
	}
	w := mathutil.ZipfWeights(branch, sharpness)
	for i := range w {
		w[i] *= 1 - tail
	}
	strict := true
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			strict = false
			break
		}
	}
	return &SyntheticLM{
		name: name, seed: seed, vocab: vocab, branch: branch,
		weights: w, tail: tail, strictOrder: strict,
		cache: newDistCache(DefaultDistCacheSize),
	}, nil
}

// MustSyntheticLM panics on construction error; for fixed experiment setups.
func MustSyntheticLM(name string, seed uint64, vocab, branch int, sharpness, tail float64) *SyntheticLM {
	m, err := NewSyntheticLM(name, seed, vocab, branch, sharpness, tail)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Model.
func (m *SyntheticLM) Name() string { return m.name }

// Vocab implements Model.
func (m *SyntheticLM) Vocab() int { return m.vocab }

// SetDistCacheSize resizes (and clears) the model's distribution cache. The
// size is rounded up to a power of two; size <= 0 disables caching (every
// Dist call recomputes — the reference path cached runs must match
// byte-for-byte).
func (m *SyntheticLM) SetDistCacheSize(size int) { m.cache = newDistCache(size) }

// CacheStats returns cumulative (hits, misses) of the distribution cache.
func (m *SyntheticLM) CacheStats() (hits, misses uint64) { return m.cache.stats() }

// Dist implements Model: candidate tokens are chosen by hashing the context;
// Zipf weights are assigned in hash order so the distribution is a
// deterministic function of (model seed, request seed, history window).
// Results are memoized by context hash; a cache hit allocates nothing.
func (m *SyntheticLM) Dist(ctx Context) Dist {
	return m.distForHash(ctx.hash(m.seed))
}

// distForHash returns the (possibly cached) distribution for a context hash.
func (m *SyntheticLM) distForHash(h uint64) Dist {
	if d, ok := m.cache.get(h, 0); ok {
		return d
	}
	d := m.computeDist(h)
	m.cache.put(h, 0, d)
	return d
}

// computeDist materializes the distribution for a context hash. Candidate
// dedup uses a linear scan (branch is small), not a map, so the only
// allocations are the entry slices that outlive the call in the cache.
func (m *SyntheticLM) computeDist(h uint64) Dist {
	entries := make([]TokenProb, 0, m.branch)
	x := h
	for len(entries) < m.branch {
		x = mathutil.SplitMix64(x)
		tok := Token(x % uint64(m.vocab))
		dup := false
		for i := range entries {
			if entries[i].Token == tok {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		entries = append(entries, TokenProb{Token: tok, Prob: m.weights[len(entries)]})
	}
	return Dist{Entries: entries, Tail: m.tail, Vocab: m.vocab}.Indexed()
}

// DraftLM approximates a target model with tunable alignment, mimicking a
// small same-family (or distilled) draft model.
//
// Real drafts agree with their targets on "easy" tokens and are confidently
// wrong on hard ones; uniform smoothing cannot express that (it never
// changes the argmax, making greedy chains accept with probability ~1).
// DraftLM therefore models alignment per context:
//
//   - with probability alpha (hash-determined per context), the draft's
//     distribution equals the target's — its proposals verify with
//     probability ≈ 1;
//   - otherwise the draft is mistaken: its top-ranked token is swapped with
//     a lower-ranked one, so its argmax carries high draft confidence but
//     low target probability (rejected most of the time), while the
//     target's true argmax hides at a lower draft rank — the case where
//     tree speculation recovers and sequence speculation stalls.
//
// alpha = 1 is a perfect draft; alpha = 0 disagrees everywhere.
type DraftLM struct {
	name   string
	target *SyntheticLM
	alpha  float64
	seed   uint64
	// cache memoizes (draft hash, target hash) -> distribution. The pair
	// fully determines the output, so caching is exact.
	cache *distCache
}

// NewDraftLM builds a draft for target with the given per-context agreement
// rate alpha in [0, 1]. seed controls which contexts the draft gets wrong.
func NewDraftLM(name string, target *SyntheticLM, alpha float64, seed uint64) (*DraftLM, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("lm: alpha %g out of [0,1]", alpha)
	}
	return &DraftLM{
		name: name, target: target, alpha: alpha, seed: seed,
		cache: newDistCache(DefaultDistCacheSize),
	}, nil
}

// MustDraftLM panics on construction error.
func MustDraftLM(name string, target *SyntheticLM, alpha float64, seed uint64) *DraftLM {
	d, err := NewDraftLM(name, target, alpha, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Model.
func (d *DraftLM) Name() string { return d.name }

// Vocab implements Model.
func (d *DraftLM) Vocab() int { return d.target.vocab }

// Alpha returns the draft/target per-context agreement rate.
func (d *DraftLM) Alpha() float64 { return d.alpha }

// SetDistCacheSize resizes (and clears) the draft's distribution cache;
// size <= 0 disables caching (see SyntheticLM.SetDistCacheSize).
func (d *DraftLM) SetDistCacheSize(size int) { d.cache = newDistCache(size) }

// CacheStats returns cumulative (hits, misses) of the draft's cache.
func (d *DraftLM) CacheStats() (hits, misses uint64) { return d.cache.stats() }

// Dist implements Model. Results are memoized by the (draft, target) context
// hash pair; a cache hit allocates nothing.
func (d *DraftLM) Dist(ctx Context) Dist {
	hd := ctx.hash(d.seed)
	ht := ctx.hash(d.target.seed)
	if dist, ok := d.cache.get(hd, ht); ok {
		return dist
	}
	dist := d.computeDist(hd, ht)
	d.cache.put(hd, ht, dist)
	return dist
}

// computeDist materializes the draft distribution from the context hash pair.
func (d *DraftLM) computeDist(hd, ht uint64) Dist {
	p := d.target.distForHash(ht)
	u := float64(hd>>11) / (1 << 53)
	if u < d.alpha || len(p.Entries) < 2 {
		return p
	}
	// Mistaken context: swap the top token's probability with that of a
	// lower-ranked candidate (rank drawn from the context hash, biased
	// toward nearby ranks — distilled drafts are near-misses far more often
	// than wildly wrong, which is what makes width-w tree speculation able
	// to recover where sequence speculation stalls).
	entries := make([]TokenProb, len(p.Entries))
	copy(entries, p.Entries)
	j := disagreeRank(mathutil.SplitMix64(hd), len(entries)-1)
	if d.target.strictOrder {
		// With strictly decreasing weights, swapping the probabilities at
		// ranks 0 and j and re-sorting is exactly a swap of the two tokens'
		// positions (probabilities stay the rank-ordered weights).
		entries[0].Token, entries[j].Token = entries[j].Token, entries[0].Token
	} else {
		entries[0].Prob, entries[j].Prob = entries[j].Prob, entries[0].Prob
		sort.SliceStable(entries, func(a, b int) bool {
			if entries[a].Prob != entries[b].Prob {
				return entries[a].Prob > entries[b].Prob
			}
			return entries[a].Token < entries[b].Token
		})
	}
	return Dist{Entries: entries, Tail: p.Tail, Vocab: p.Vocab}.Indexed()
}

// disagreeRank draws the target rank a mistaken draft confuses with the top:
// rank 1 (the runner-up) 55% of the time, rank 2 25%, rank 3 10%, deeper
// ranks the remainder — matching how distilled drafts err.
func disagreeRank(h uint64, maxRank int) int {
	if maxRank < 1 {
		return 1
	}
	r := int(h % 100)
	var j int
	switch {
	case r < 55:
		j = 1
	case r < 80:
		j = 2
	case r < 90:
		j = 3
	default:
		j = 4 + int(mathutil.SplitMix64(h+1)%3)
	}
	if j > maxRank {
		j = maxRank
	}
	return j
}
