// Package lm provides the synthetic language models the simulator serves.
//
// A real serving system observes its LLM through exactly two channels: the
// cost of a forward pass (modeled in internal/gpu) and the token-level
// accept/reject behaviour during speculative verification. This package
// reproduces the second channel with a deterministic, seedable synthetic
// autoregressive model:
//
//   - The target model assigns every context a next-token distribution
//     derived from a hash of the recent tokens, with Zipf-shaped mass over a
//     small candidate set (real LLM next-token distributions are similarly
//     concentrated).
//   - The draft model is an alpha-mixture of the target distribution and an
//     independent "mistake" distribution, so draft/target alignment — the
//     single statistic that governs speculation acceptance rates — is a
//     tunable scalar calibrated against the paper's Figure 12.
//
// Everything is deterministic given (model seed, request seed, context), so
// experiments replay exactly.
package lm

import (
	"fmt"
	"sort"

	"adaserve/internal/mathutil"
)

// Token is a vocabulary item. Valid tokens are in [0, VocabSize).
type Token int32

// TokenProb pairs a token with its probability under some distribution.
type TokenProb struct {
	Token Token
	Prob  float64
}

// Dist is a truncated next-token distribution: explicit probabilities for a
// small candidate set plus Tail mass smeared uniformly over the rest of the
// vocabulary. Entries are sorted by descending probability.
type Dist struct {
	Entries []TokenProb
	// Tail is the probability mass not covered by Entries.
	Tail float64
	// Vocab is the vocabulary size (for tail token sampling).
	Vocab int
}

// Validate checks that the distribution is normalized and sorted.
func (d Dist) Validate() error {
	var s float64
	prev := 1.1
	for _, e := range d.Entries {
		if e.Prob < 0 {
			return fmt.Errorf("lm: negative probability %g", e.Prob)
		}
		if e.Prob > prev+1e-12 {
			return fmt.Errorf("lm: entries not sorted descending")
		}
		prev = e.Prob
		s += e.Prob
	}
	s += d.Tail
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("lm: distribution sums to %g", s)
	}
	return nil
}

// Prob returns the probability of tok under d.
func (d Dist) Prob(tok Token) float64 {
	for _, e := range d.Entries {
		if e.Token == tok {
			return e.Prob
		}
	}
	if d.Vocab <= len(d.Entries) {
		return 0
	}
	return d.Tail / float64(d.Vocab-len(d.Entries))
}

// TopK returns up to k highest-probability entries.
func (d Dist) TopK(k int) []TokenProb {
	if k > len(d.Entries) {
		k = len(d.Entries)
	}
	out := make([]TokenProb, k)
	copy(out, d.Entries[:k])
	return out
}

// Argmax returns the most likely token.
func (d Dist) Argmax() Token {
	if len(d.Entries) == 0 {
		return 0
	}
	return d.Entries[0].Token
}

// Sample draws a token from d using rng.
func (d Dist) Sample(rng *mathutil.RNG) Token {
	u := rng.Float64()
	var acc float64
	for _, e := range d.Entries {
		acc += e.Prob
		if u < acc {
			return e.Token
		}
	}
	// Tail: uniform over non-candidate tokens; approximate by hashing.
	if d.Vocab > 0 {
		return Token(rng.Intn(d.Vocab))
	}
	return d.Entries[len(d.Entries)-1].Token
}

// Context identifies a decoding position: the request's own seed (so two
// requests with identical recent tokens still have independent text) plus
// the recent token history.
type Context struct {
	ReqSeed uint64
	// Hist is the full generated history; only the last HistoryWindow tokens
	// influence the distribution (an order-n Markov approximation).
	Hist []Token
}

// HistoryWindow is how many trailing tokens condition the next-token
// distribution.
const HistoryWindow = 4

// hash folds the request seed and trailing window into one 64-bit value.
func (c Context) hash(salt uint64) uint64 {
	h := mathutil.Hash2(c.ReqSeed, salt)
	start := len(c.Hist) - HistoryWindow
	if start < 0 {
		start = 0
	}
	for _, t := range c.Hist[start:] {
		h = mathutil.Hash2(h, uint64(t)+0x1000)
	}
	return h
}

// Extend returns a context with one more history token appended. The
// underlying slice is copied only when needed by the caller; Extend always
// copies to keep contexts immutable under tree exploration.
func (c Context) Extend(tok Token) Context {
	h := make([]Token, len(c.Hist)+1)
	copy(h, c.Hist)
	h[len(c.Hist)] = tok
	return Context{ReqSeed: c.ReqSeed, Hist: h}
}

// Model is a synthetic autoregressive language model.
type Model interface {
	// Dist returns the next-token distribution for ctx.
	Dist(ctx Context) Dist
	// Vocab returns the vocabulary size.
	Vocab() int
	// Name identifies the model in logs and metrics.
	Name() string
}

// SyntheticLM is the target ("large") model.
type SyntheticLM struct {
	name string
	seed uint64
	// vocab is the vocabulary size.
	vocab int
	// branch is the candidate-set size per context.
	branch int
	// weights are the Zipf weights shared by every context (the permutation
	// of which tokens get them is context-dependent).
	weights []float64
	// tail is the mass reserved outside the candidate set.
	tail float64
}

// NewSyntheticLM constructs a target model.
//
//   - vocab: vocabulary size (e.g. 4096; the serving layer never enumerates it).
//   - branch: candidate tokens per context (e.g. 16).
//   - sharpness: Zipf exponent; higher concentrates mass on the top token.
//     sharpness ≈ 1.6 yields top-1 probability ≈ 0.6, typical of instruct
//     LLMs under greedy-ish sampling.
//   - tail: probability mass outside the candidate set (e.g. 0.02).
func NewSyntheticLM(name string, seed uint64, vocab, branch int, sharpness, tail float64) (*SyntheticLM, error) {
	if vocab < 2 || branch < 1 || branch > vocab {
		return nil, fmt.Errorf("lm: bad vocab/branch %d/%d", vocab, branch)
	}
	if tail < 0 || tail >= 1 {
		return nil, fmt.Errorf("lm: tail %g out of [0,1)", tail)
	}
	w := mathutil.ZipfWeights(branch, sharpness)
	for i := range w {
		w[i] *= 1 - tail
	}
	return &SyntheticLM{name: name, seed: seed, vocab: vocab, branch: branch, weights: w, tail: tail}, nil
}

// MustSyntheticLM panics on construction error; for fixed experiment setups.
func MustSyntheticLM(name string, seed uint64, vocab, branch int, sharpness, tail float64) *SyntheticLM {
	m, err := NewSyntheticLM(name, seed, vocab, branch, sharpness, tail)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Model.
func (m *SyntheticLM) Name() string { return m.name }

// Vocab implements Model.
func (m *SyntheticLM) Vocab() int { return m.vocab }

// Dist implements Model: candidate tokens are chosen by hashing the context;
// Zipf weights are assigned in hash order so the distribution is a
// deterministic function of (model seed, request seed, history window).
func (m *SyntheticLM) Dist(ctx Context) Dist {
	h := ctx.hash(m.seed)
	entries := make([]TokenProb, 0, m.branch)
	seen := make(map[Token]struct{}, m.branch)
	x := h
	for len(entries) < m.branch {
		x = mathutil.SplitMix64(x)
		tok := Token(x % uint64(m.vocab))
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		entries = append(entries, TokenProb{Token: tok, Prob: m.weights[len(entries)]})
	}
	return Dist{Entries: entries, Tail: m.tail, Vocab: m.vocab}
}

// DraftLM approximates a target model with tunable alignment, mimicking a
// small same-family (or distilled) draft model.
//
// Real drafts agree with their targets on "easy" tokens and are confidently
// wrong on hard ones; uniform smoothing cannot express that (it never
// changes the argmax, making greedy chains accept with probability ~1).
// DraftLM therefore models alignment per context:
//
//   - with probability alpha (hash-determined per context), the draft's
//     distribution equals the target's — its proposals verify with
//     probability ≈ 1;
//   - otherwise the draft is mistaken: its top-ranked token is swapped with
//     a lower-ranked one, so its argmax carries high draft confidence but
//     low target probability (rejected most of the time), while the
//     target's true argmax hides at a lower draft rank — the case where
//     tree speculation recovers and sequence speculation stalls.
//
// alpha = 1 is a perfect draft; alpha = 0 disagrees everywhere.
type DraftLM struct {
	name   string
	target *SyntheticLM
	alpha  float64
	seed   uint64
}

// NewDraftLM builds a draft for target with the given per-context agreement
// rate alpha in [0, 1]. seed controls which contexts the draft gets wrong.
func NewDraftLM(name string, target *SyntheticLM, alpha float64, seed uint64) (*DraftLM, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("lm: alpha %g out of [0,1]", alpha)
	}
	return &DraftLM{name: name, target: target, alpha: alpha, seed: seed}, nil
}

// MustDraftLM panics on construction error.
func MustDraftLM(name string, target *SyntheticLM, alpha float64, seed uint64) *DraftLM {
	d, err := NewDraftLM(name, target, alpha, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Model.
func (d *DraftLM) Name() string { return d.name }

// Vocab implements Model.
func (d *DraftLM) Vocab() int { return d.target.vocab }

// Alpha returns the draft/target per-context agreement rate.
func (d *DraftLM) Alpha() float64 { return d.alpha }

// Dist implements Model.
func (d *DraftLM) Dist(ctx Context) Dist {
	p := d.target.Dist(ctx)
	h := ctx.hash(d.seed)
	u := float64(h>>11) / (1 << 53)
	if u < d.alpha || len(p.Entries) < 2 {
		return p
	}
	// Mistaken context: swap the top token's probability with that of a
	// lower-ranked candidate (rank drawn from the context hash, biased
	// toward nearby ranks — distilled drafts are near-misses far more often
	// than wildly wrong, which is what makes width-w tree speculation able
	// to recover where sequence speculation stalls).
	entries := make([]TokenProb, len(p.Entries))
	copy(entries, p.Entries)
	j := disagreeRank(mathutil.SplitMix64(h), len(entries)-1)
	entries[0].Prob, entries[j].Prob = entries[j].Prob, entries[0].Prob
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].Prob != entries[b].Prob {
			return entries[a].Prob > entries[b].Prob
		}
		return entries[a].Token < entries[b].Token
	})
	return Dist{Entries: entries, Tail: p.Tail, Vocab: p.Vocab}
}

// disagreeRank draws the target rank a mistaken draft confuses with the top:
// rank 1 (the runner-up) 55% of the time, rank 2 25%, rank 3 10%, deeper
// ranks the remainder — matching how distilled drafts err.
func disagreeRank(h uint64, maxRank int) int {
	if maxRank < 1 {
		return 1
	}
	r := int(h % 100)
	var j int
	switch {
	case r < 55:
		j = 1
	case r < 80:
		j = 2
	case r < 90:
		j = 3
	default:
		j = 4 + int(mathutil.SplitMix64(h+1)%3)
	}
	if j > maxRank {
		j = maxRank
	}
	return j
}
