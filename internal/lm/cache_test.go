package lm

import (
	"testing"

	"adaserve/internal/mathutil"
)

// distsEqual compares two distributions entry-by-entry (order included).
func distsEqual(a, b Dist) bool {
	if len(a.Entries) != len(b.Entries) || a.Tail != b.Tail || a.Vocab != b.Vocab {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// walkContexts yields a deterministic stream of contexts mixing fresh seeds
// and incremental extensions, the same access pattern decoding produces.
func walkContexts(n int, visit func(Context)) {
	rng := mathutil.NewRNG(0xcafe)
	for i := 0; i < n; i++ {
		ctx := Context{ReqSeed: uint64(i % 17)}
		steps := 1 + rng.Intn(8)
		for s := 0; s < steps; s++ {
			visit(ctx)
			ctx = ctx.Extend(Token(rng.Intn(64)))
		}
	}
}

// TestDistCacheExact verifies a cached model agrees byte-for-byte with an
// identically seeded uncached one over a decoding-shaped context stream.
func TestDistCacheExact(t *testing.T) {
	cached := MustSyntheticLM("m", 3, 4096, 16, 3.2, 0.02)
	plain := MustSyntheticLM("m", 3, 4096, 16, 3.2, 0.02)
	plain.SetDistCacheSize(0)
	walkContexts(300, func(ctx Context) {
		if !distsEqual(cached.Dist(ctx), plain.Dist(ctx)) {
			t.Fatalf("cached dist differs at ctx %+v", ctx)
		}
	})
	if hits, _ := cached.CacheStats(); hits == 0 {
		t.Fatal("cache never hit — test exercised nothing")
	}
	if hits, misses := plain.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded activity: %d hits %d misses", hits, misses)
	}
}

// TestDistCacheEvictionCorrectness forces constant eviction with a 1-slot
// cache: results must still be exact (the cache validates full keys, never
// trusts the slot).
func TestDistCacheEvictionCorrectness(t *testing.T) {
	tiny := MustSyntheticLM("m", 5, 4096, 16, 3.2, 0.02)
	tiny.SetDistCacheSize(1)
	plain := MustSyntheticLM("m", 5, 4096, 16, 3.2, 0.02)
	plain.SetDistCacheSize(0)
	// Alternate between two contexts so the single slot thrashes.
	a, b := Context{ReqSeed: 1}, Context{ReqSeed: 2}
	for i := 0; i < 50; i++ {
		if !distsEqual(tiny.Dist(a), plain.Dist(a)) {
			t.Fatal("evicting cache corrupted dist for ctx a")
		}
		if !distsEqual(tiny.Dist(b), plain.Dist(b)) {
			t.Fatal("evicting cache corrupted dist for ctx b")
		}
	}
	if _, misses := tiny.CacheStats(); misses < 2 {
		t.Fatalf("expected eviction-driven misses, got %d", misses)
	}
}

// TestDraftCacheExact is TestDistCacheExact for the draft model, whose cache
// is keyed on the (draft hash, target hash) pair.
func TestDraftCacheExact(t *testing.T) {
	targetA := MustSyntheticLM("t", 3, 4096, 16, 3.2, 0.02)
	targetB := MustSyntheticLM("t", 3, 4096, 16, 3.2, 0.02)
	targetB.SetDistCacheSize(0)
	cached := MustDraftLM("d", targetA, 0.85, 9)
	plain := MustDraftLM("d", targetB, 0.85, 9)
	plain.SetDistCacheSize(0)
	walkContexts(300, func(ctx Context) {
		if !distsEqual(cached.Dist(ctx), plain.Dist(ctx)) {
			t.Fatalf("cached draft dist differs at ctx %+v", ctx)
		}
	})
	if hits, _ := cached.CacheStats(); hits == 0 {
		t.Fatal("draft cache never hit")
	}
}

// TestDraftSortFreePathMatchesSort pins the sort-free mistaken-draft
// construction (strictly decreasing Zipf weights) against the reference
// sort-based path, which still runs for non-strict weight tables.
func TestDraftSortFreePathMatchesSort(t *testing.T) {
	target := MustSyntheticLM("t", 7, 4096, 16, 3.2, 0.02)
	if !target.strictOrder {
		t.Fatal("sharpness 3.2 should produce strictly decreasing weights")
	}
	draft := MustDraftLM("d", target, 0.0, 11) // mistaken everywhere
	draft.SetDistCacheSize(0)
	ref := MustDraftLM("d", target, 0.0, 11)
	ref.SetDistCacheSize(0)
	walkContexts(200, func(ctx Context) {
		got := draft.Dist(ctx)
		// Reference: recompute via the generic sort path.
		target.strictOrder = false
		want := ref.Dist(ctx)
		target.strictOrder = true
		if !distsEqual(got, want) {
			t.Fatalf("sort-free draft path diverged at ctx %+v:\n got %v\nwant %v",
				ctx, got.Entries, want.Entries)
		}
	})
}

// TestUniformWeightsUseSortPath covers the non-strict fallback end to end:
// sharpness 0 gives equal weights, where the mistaken-draft "swap" is an
// identity on probabilities and the stable sort orders tokens ascending.
func TestUniformWeightsUseSortPath(t *testing.T) {
	target := MustSyntheticLM("t", 7, 256, 8, 0, 0.02)
	if target.strictOrder {
		t.Fatal("sharpness 0 should not report strictly decreasing weights")
	}
	draft := MustDraftLM("d", target, 0.0, 11)
	for i := uint64(0); i < 50; i++ {
		d := draft.Dist(Context{ReqSeed: i})
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
}

// TestIndexedProbMatchesScan checks the binary-search Prob against the
// linear-scan fallback for every candidate and a band of tail tokens.
func TestIndexedProbMatchesScan(t *testing.T) {
	m := MustSyntheticLM("m", 13, 512, 16, 3.2, 0.02)
	d := m.Dist(Context{ReqSeed: 4})
	if d.byTok == nil {
		t.Fatal("model dist should carry the token index")
	}
	plain := Dist{Entries: d.Entries, Tail: d.Tail, Vocab: d.Vocab}
	for tok := Token(0); tok < 512; tok++ {
		if got, want := d.Prob(tok), plain.Prob(tok); got != want {
			t.Fatalf("Prob(%d): indexed %g, scan %g", tok, got, want)
		}
	}
}

// TestSampleTailAvoidsCandidates verifies the tail fallback fix: a tail draw
// must land outside the candidate set (the old code could return a candidate,
// double-counting its mass).
func TestSampleTailAvoidsCandidates(t *testing.T) {
	// Large tail and tiny vocab make tail hits and collisions frequent.
	m := MustSyntheticLM("m", 1, 32, 8, 1.0, 0.4)
	d := m.Dist(Context{ReqSeed: 2})
	cand := make(map[Token]bool, len(d.Entries))
	for _, e := range d.Entries {
		cand[e.Token] = true
	}
	rng := mathutil.NewRNG(77)
	counts := make(map[Token]int)
	const n = 200000
	tailDraws := 0
	for i := 0; i < n; i++ {
		tok := d.Sample(rng)
		counts[tok]++
		if !cand[tok] {
			tailDraws++
		}
	}
	if tailDraws == 0 {
		t.Fatal("tail never sampled — test exercised nothing")
	}
	// Tail frequency should match the tail mass.
	if got := float64(tailDraws) / n; got < 0.35 || got > 0.45 {
		t.Fatalf("tail sampled %.3f of draws, want ≈ 0.40", got)
	}
	// Candidate frequencies must match their stated probabilities (the old
	// fallback inflated candidates by the tail's collision mass).
	for _, e := range d.Entries {
		got := float64(counts[e.Token]) / n
		if diff := got - e.Prob; diff > 0.01 || diff < -0.01 {
			t.Fatalf("token %d sampled %.3f, want %.3f", e.Token, got, e.Prob)
		}
	}
	// Each non-candidate should get roughly tail/(vocab-branch) mass.
	per := d.Tail / float64(d.Vocab-len(d.Entries))
	for tok := Token(0); tok < Token(d.Vocab); tok++ {
		if cand[tok] {
			continue
		}
		got := float64(counts[tok]) / n
		if diff := got - per; diff > 0.01 || diff < -0.01 {
			t.Fatalf("tail token %d sampled %.4f, want ≈ %.4f", tok, got, per)
		}
	}
}
