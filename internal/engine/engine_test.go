package engine

import (
	"testing"

	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/toktree"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.88, 2)
	return MustNew(Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       3,
	})
}

func decodingReq(id int, prompt, maxNew int) *request.Request {
	r := request.New(id, request.Chat, 0.05, 0, prompt, maxNew, uint64(id)*31+7)
	r.Phase = request.Decoding
	r.PrefillDone = prompt
	return r
}

func TestNewRequiresTarget(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("engine without target accepted")
	}
}

func TestPrefillAdvancesAndFlips(t *testing.T) {
	e := newEngine(t)
	r := request.New(1, request.Chat, 0.05, 0, 100, 10, 7)
	r.Phase = request.Prefilling

	lat := e.Prefill([]PrefillItem{{Req: r, Chunk: 60}})
	if lat <= 0 {
		t.Fatal("prefill should cost time")
	}
	if r.PrefillDone != 60 || r.Phase != request.Prefilling {
		t.Fatalf("after chunk: done=%d phase=%s", r.PrefillDone, r.Phase)
	}
	e.Prefill([]PrefillItem{{Req: r, Chunk: 40}})
	if r.Phase != request.Decoding {
		t.Fatal("completed prefill should flip to decoding")
	}
	if e.Stats.PrefillTime <= 0 || e.Stats.VerifiedTokens != 100 {
		t.Fatalf("stats %+v", e.Stats)
	}
}

func TestPrefillPanicsOnOverChunk(t *testing.T) {
	e := newEngine(t)
	r := request.New(1, request.Chat, 0.05, 0, 100, 10, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("over-sized chunk did not panic")
		}
	}()
	e.Prefill([]PrefillItem{{Req: r, Chunk: 101}})
}

func TestPrefillLongerPromptsCostMore(t *testing.T) {
	e := newEngine(t)
	r1 := request.New(1, request.Chat, 0.05, 0, 100, 10, 7)
	r2 := request.New(2, request.Chat, 0.05, 0, 2000, 10, 7)
	l1 := e.Prefill([]PrefillItem{{Req: r1, Chunk: 100}})
	l2 := e.Prefill([]PrefillItem{{Req: r2, Chunk: 2000}})
	if l2 <= l1 {
		t.Fatalf("2000-token prefill (%.2fms) not dearer than 100 (%.2fms)", 1e3*l2, 1e3*l1)
	}
}

func TestDecodeBatchOneTokenEach(t *testing.T) {
	e := newEngine(t)
	reqs := []*request.Request{decodingReq(1, 64, 10), decodingReq(2, 64, 10)}
	res := e.DecodeBatch(reqs)
	if len(res.Tokens) != 2 {
		t.Fatalf("tokens %v", res.Tokens)
	}
	if res.GPUTime <= 0 {
		t.Fatal("decode should cost time")
	}
	if e.Stats.VerifySteps != 2 {
		t.Fatalf("verify steps %d", e.Stats.VerifySteps)
	}
}

func TestDecodeBatchOrderIndependence(t *testing.T) {
	// The same requests in a different slice order must receive the same
	// tokens (per-request determinism), because the engine samples in ID
	// order.
	mk := func(order []int) map[int]lm.Token {
		e := newEngine(t)
		reqs := make([]*request.Request, len(order))
		for i, id := range order {
			reqs[i] = decodingReq(id, 64, 10)
		}
		res := e.DecodeBatch(reqs)
		out := map[int]lm.Token{}
		for i, r := range reqs {
			out[r.ID] = res.Tokens[i]
		}
		return out
	}
	a := mk([]int{1, 2, 3})
	b := mk([]int{3, 1, 2})
	for id, tok := range a {
		if b[id] != tok {
			t.Fatalf("request %d got different tokens under reordering", id)
		}
	}
}

func TestDecodeBatchEmpty(t *testing.T) {
	e := newEngine(t)
	res := e.DecodeBatch(nil)
	if res.GPUTime != 0 || len(res.Tokens) != 0 {
		t.Fatal("empty batch should be free")
	}
}

func TestSpeculateBeamsShapesAndCost(t *testing.T) {
	e := newEngine(t)
	reqs := []*request.Request{decodingReq(1, 64, 50), decodingReq(2, 64, 50)}
	res, err := e.SpeculateBeams(reqs, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 2 {
		t.Fatal("one tree per request")
	}
	for i, tr := range res.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if tr.Depth() != 4 {
			t.Fatalf("tree %d depth %d", i, tr.Depth())
		}
	}
	if res.GPUTime <= 0 || res.DraftTokens <= 0 {
		t.Fatal("speculation must cost draft time")
	}
	if e.Stats.SpecTime != res.GPUTime {
		t.Fatal("stats not accumulated")
	}
}

func TestSpeculateBeamsDepthZero(t *testing.T) {
	e := newEngine(t)
	reqs := []*request.Request{decodingReq(1, 64, 50)}
	res, err := e.SpeculateBeams(reqs, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees[0].Size() != 1 || res.GPUTime != 0 {
		t.Fatal("depth 0 should be a free bare root")
	}
}

func TestSpeculateRequiresDraft(t *testing.T) {
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	e := MustNew(Config{
		Target:     target,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		Seed:       3,
	})
	if _, err := e.SpeculateBeams([]*request.Request{decodingReq(1, 8, 4)}, 2, 2); err == nil {
		t.Fatal("speculation without draft accepted")
	}
}

func TestVerifyTreesCommitsViaHelper(t *testing.T) {
	e := newEngine(t)
	r := decodingReq(1, 64, 50)
	spec, err := e.SpeculateBeams([]*request.Request{r}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := toktree.NewSelection(spec.Trees[0])
	for id := 1; id < spec.Trees[0].Size(); id++ {
		if sel.Has(spec.Trees[0].Nodes[id].Parent) {
			sel.Add(id)
		}
	}
	ver := e.VerifyTrees([]VerifyItem{{Req: r, Sel: sel}})
	if ver.GPUTime <= 0 || ver.TokensVerified != sel.Size() {
		t.Fatalf("verify result %+v", ver)
	}
	kept := CommitVerify(r, ver.Results[0], 1.0)
	if kept < 1 {
		t.Fatal("verification must commit at least one token")
	}
	if r.OutputLen() != kept || r.VerifySteps != 1 {
		t.Fatalf("request state len=%d steps=%d", r.OutputLen(), r.VerifySteps)
	}
}

func TestVerifyTreesWithPrefillSharesPass(t *testing.T) {
	e := newEngine(t)
	r := decodingReq(1, 64, 50)
	pre := request.New(2, request.Summarization, 0.15, 0, 500, 20, 9)
	pre.Phase = request.Prefilling

	spec, err := e.SpeculateBeams([]*request.Request{r}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := toktree.NewSelection(spec.Trees[0])
	combined := e.VerifyTreesWithPrefill(
		[]VerifyItem{{Req: r, Sel: sel}},
		[]PrefillItem{{Req: pre, Chunk: 128}},
	)
	if pre.PrefillDone != 128 {
		t.Fatal("co-batched prefill did not advance")
	}

	// The combined pass must be cheaper than two separate passes (shared
	// weight load) — compare against fresh engines to avoid graph-cache
	// interference.
	e2 := newEngine(t)
	r2 := decodingReq(1, 64, 50)
	pre2 := request.New(2, request.Summarization, 0.15, 0, 500, 20, 9)
	pre2.Phase = request.Prefilling
	spec2, _ := e2.SpeculateBeams([]*request.Request{r2}, 2, 2)
	sel2 := toktree.NewSelection(spec2.Trees[0])
	sep := e2.VerifyTrees([]VerifyItem{{Req: r2, Sel: sel2}}).GPUTime
	sep += e2.Prefill([]PrefillItem{{Req: pre2, Chunk: 128}})
	if combined.GPUTime >= sep {
		t.Fatalf("co-batched pass %.2fms not cheaper than separate %.2fms",
			1e3*combined.GPUTime, 1e3*sep)
	}
}

func TestMixedPass(t *testing.T) {
	e := newEngine(t)
	dec := []*request.Request{decodingReq(1, 64, 50)}
	pre := request.New(2, request.Summarization, 0.15, 0, 300, 20, 9)
	pre.Phase = request.Prefilling

	res, lat := e.Mixed(dec, []PrefillItem{{Req: pre, Chunk: 100}})
	if lat <= 0 || len(res.Tokens) != 1 {
		t.Fatalf("mixed pass lat=%g tokens=%v", lat, res.Tokens)
	}
	if pre.PrefillDone != 100 {
		t.Fatal("mixed pass did not advance prefill")
	}
	// Empty mixed pass is free.
	res2, lat2 := e.Mixed(nil, nil)
	if lat2 != 0 || len(res2.Tokens) != 0 {
		t.Fatal("empty mixed pass should be free")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []lm.Token {
		e := newEngine(t)
		r := decodingReq(1, 64, 30)
		var out []lm.Token
		for r.Phase == request.Decoding {
			spec, err := e.SpeculateBeams([]*request.Request{r}, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			sel := toktree.NewSelection(spec.Trees[0])
			for id := 1; id < spec.Trees[0].Size(); id++ {
				if sel.Has(spec.Trees[0].Nodes[id].Parent) {
					sel.Add(id)
				}
			}
			ver := e.VerifyTrees([]VerifyItem{{Req: r, Sel: sel}})
			CommitVerify(r, ver.Results[0], 0)
		}
		out = append(out, r.Output...)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge at %d", i)
		}
	}
}

func TestBaselineLatencyExposed(t *testing.T) {
	e := newEngine(t)
	if e.BaselineLatency(512) <= 0 {
		t.Fatal("baseline latency should be positive")
	}
}

// TestPrefillChargesReloadStallOnce pins the host-tier reload economics: a
// pending KV reload stall is added to the request's first prefill pass and
// drained so later passes pay nothing; stall-free batches are bitwise
// unchanged.
func TestPrefillChargesReloadStallOnce(t *testing.T) {
	e := newEngine(t)
	clean := request.New(1, request.Chat, 0.05, 0, 64, 8, 7)
	clean.Phase = request.Prefilling
	base := e.Prefill([]PrefillItem{{Req: clean, Chunk: 32}})

	e2 := newEngine(t)
	stalled := request.New(2, request.Chat, 0.05, 0, 64, 8, 7)
	stalled.Phase = request.Prefilling
	stalled.ReloadStall = 0.025
	first := e2.Prefill([]PrefillItem{{Req: stalled, Chunk: 32}})
	if want := base + 0.025; first != want {
		t.Fatalf("first pass latency %g, want base %g + 0.025 stall", first, want)
	}
	if stalled.ReloadStall != 0 {
		t.Fatalf("stall %g not drained after the first pass", stalled.ReloadStall)
	}
	second := e2.Prefill([]PrefillItem{{Req: stalled, Chunk: 32}})
	clean2 := e.Prefill([]PrefillItem{{Req: clean, Chunk: 32}})
	if second != clean2 {
		t.Fatalf("second pass %g still carries the stall (clean %g)", second, clean2)
	}
}
