// Package engine is the execution engine (Figure 6): it "runs" draft and
// target models by querying the synthetic LMs of internal/lm for token
// outcomes and the roofline cost models of internal/gpu for wall time.
// Schedulers call the engine; the engine never makes policy decisions.
//
// Timing protocol: engine methods return results plus the modeled GPU time
// they would take; the caller accumulates those into the iteration's end
// time and commits tokens at that time. This keeps the decision of *when*
// state becomes visible with the scheduler, as in a real system.
package engine

import (
	"fmt"

	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/toktree"
)

// Config assembles an engine.
type Config struct {
	Target     lm.Model
	Draft      lm.Model
	TargetCost *gpu.CostModel
	DraftCost  *gpu.CostModel
	// Rule selects the verification acceptance rule.
	Rule lm.VerifyRule
	// Seed drives the engine's verification RNG.
	Seed uint64
}

// Engine executes forward passes for one serving instance.
//
// Per-iteration scratch (candidate trees, verification results, ordering
// buffers) is pooled across iterations: the objects returned by
// SpeculateBeams and VerifyTrees* stay valid until the NEXT call of the same
// method, which matches how schedulers consume them (within one iteration).
// Engines are not safe for concurrent use; the parallel experiment runner
// gives every worker its own.
type Engine struct {
	target     lm.Model
	draft      lm.Model
	targetCost *gpu.CostModel
	draftCost  *gpu.CostModel
	verifier   *lm.Verifier
	rng        *mathutil.RNG

	// ord is the reusable index permutation that orders batched requests by
	// ID for deterministic RNG consumption; ids is its parallel key buffer.
	ord []int
	ids []int
	// treePool recycles candidate trees; liveTrees are the ones handed out
	// by the last SpeculateBeams, reclaimed at the next call.
	treePool  toktree.TreePool
	liveTrees []*toktree.Tree
	beam      toktree.BeamBuilder
	// vres holds pooled verification results; vscratch the walk buffers.
	vres     []toktree.VerifyResult
	vscratch toktree.VerifyScratch

	// Stats accumulate across the run.
	Stats Stats
}

// Stats tallies engine activity for metrics and the Figure 15 breakdown.
type Stats struct {
	// SpecTime is GPU seconds spent in draft-model speculation.
	SpecTime float64
	// VerifyTime is GPU seconds spent in target verification/decode.
	VerifyTime float64
	// PrefillTime is GPU seconds spent prefilling prompts.
	PrefillTime float64
	// DraftTokens counts draft-model forward positions.
	DraftTokens int
	// VerifiedTokens counts target forward positions during verify/decode.
	VerifiedTokens int
	// CommittedTokens counts tokens committed to outputs.
	CommittedTokens int
	// VerifySteps counts verification (or plain decode) iterations summed
	// over requests.
	VerifySteps int
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Target == nil || cfg.TargetCost == nil {
		return nil, fmt.Errorf("engine: target model and cost model required")
	}
	e := &Engine{
		target:     cfg.Target,
		draft:      cfg.Draft,
		targetCost: cfg.TargetCost,
		draftCost:  cfg.DraftCost,
		rng:        mathutil.NewRNG(cfg.Seed),
	}
	if cfg.Draft != nil {
		e.verifier = lm.NewVerifier(cfg.Target, cfg.Draft, cfg.Rule, e.rng)
	} else {
		e.verifier = lm.NewVerifier(cfg.Target, nil, cfg.Rule, e.rng)
	}
	return e, nil
}

// MustNew panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Target returns the target model.
func (e *Engine) Target() lm.Model { return e.target }

// Draft returns the draft model (nil when speculation is disabled).
func (e *Engine) Draft() lm.Model { return e.draft }

// TargetCost returns the target's cost model.
func (e *Engine) TargetCost() *gpu.CostModel { return e.targetCost }

// RNG exposes the engine's RNG for schedulers needing deterministic noise.
func (e *Engine) RNG() *mathutil.RNG { return e.rng }

// PrefillChunk models processing `chunk` prompt tokens for each listed
// request (each entry its own chunk size) in one batched pass and returns
// the GPU time. It advances PrefillDone and flips requests whose prompt
// completes into the Decoding phase.
type PrefillItem struct {
	Req   *request.Request
	Chunk int
}

// drainReloadStall collects the pending host-tier KV reload latency of
// requests entering a prefill pass, zeroing it so it is charged exactly
// once — on the request's first pass after admission. Returns 0 for batches
// without reloads, leaving pass latency bitwise unchanged when prefix
// caching is off.
func drainReloadStall(items []PrefillItem) float64 {
	stall := 0.0
	for _, it := range items {
		if s := it.Req.ReloadStall; s > 0 {
			stall += s
			it.Req.ReloadStall = 0
		}
	}
	return stall
}

// Prefill runs one batched prefill pass over the items. Attention cost is
// exact: each new token attends over all prior tokens of its sequence.
func (e *Engine) Prefill(items []PrefillItem) float64 {
	if len(items) == 0 {
		return 0
	}
	totalTokens := 0
	kvReads := 0
	for _, it := range items {
		if it.Chunk <= 0 {
			panic(fmt.Sprintf("engine: prefill chunk %d for request %d", it.Chunk, it.Req.ID))
		}
		if it.Chunk > it.Req.RemainingPrefill() {
			panic(fmt.Sprintf("engine: prefill chunk %d exceeds remaining %d for request %d",
				it.Chunk, it.Req.RemainingPrefill(), it.Req.ID))
		}
		prior := it.Req.PrefillDone
		c := it.Chunk
		totalTokens += c
		kvReads += c*prior + c*(c+1)/2
	}
	lat := e.targetCost.ForwardLatency(gpu.BatchShape{
		Tokens: totalTokens, Seqs: len(items), KVTokens: kvReads,
	}) + drainReloadStall(items)
	for _, it := range items {
		it.Req.PrefillDone += it.Chunk
		if it.Req.RemainingPrefill() == 0 {
			it.Req.Phase = request.Decoding
		}
	}
	e.Stats.PrefillTime += lat
	e.Stats.VerifiedTokens += totalTokens
	return lat
}

// DecodeResult reports one plain (non-speculative) decode pass.
type DecodeResult struct {
	// Tokens[i] is the token generated for reqs[i].
	Tokens []lm.Token
	// GPUTime is the modeled pass latency.
	GPUTime float64
}

// orderByKeys fills e.ord with a permutation of [0, len(e.ids)) sorted by
// the request IDs the caller staged in e.ids: the deterministic
// RNG-consumption order for batched passes, independent of the caller's
// batch order. This is the single source of truth for that ordering —
// DecodeBatch, Mixed and VerifyTreesWithPrefill all route through it.
// Insertion sort: IDs are unique and batches arrive nearly sorted (pool
// order), so this is linear in practice and free of sort.Slice's
// reflection allocations.
func (e *Engine) orderByKeys() []int {
	e.ord = e.ord[:0]
	for i := range e.ids {
		e.ord = append(e.ord, i)
	}
	ord, ids := e.ord, e.ids
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ids[ord[j]] < ids[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return ord
}

// orderByID is orderByKeys keyed on a request batch.
func (e *Engine) orderByID(reqs []*request.Request) []int {
	e.ids = e.ids[:0]
	for _, r := range reqs {
		e.ids = append(e.ids, r.ID)
	}
	return e.orderByKeys()
}

// DecodeBatch performs one continuous-batching decode iteration: every
// request generates exactly one token (sampled from the target, matching
// the stochastic verification rule's marginal distribution). Tokens are
// NOT committed; the caller commits at the iteration end time.
func (e *Engine) DecodeBatch(reqs []*request.Request) *DecodeResult {
	if len(reqs) == 0 {
		return &DecodeResult{}
	}
	res := &DecodeResult{Tokens: make([]lm.Token, len(reqs))}
	kv := 0
	for _, i := range e.orderByID(reqs) {
		r := reqs[i]
		res.Tokens[i] = e.target.Dist(r.Ctx).Sample(e.rng)
		kv += r.ContextLen() + 1
	}
	res.GPUTime = e.targetCost.ForwardLatency(gpu.BatchShape{
		Tokens: len(reqs), Seqs: len(reqs), KVTokens: kv,
	})
	e.Stats.VerifyTime += res.GPUTime
	e.Stats.VerifiedTokens += len(reqs)
	e.Stats.VerifySteps += len(reqs)
	return res
}

// Mixed runs one Sarathi-style co-batched pass: one decode token for each
// decode request plus prefill chunks for prefilling requests, in a single
// forward pass (chunked-prefill co-batching). The combined pass shares the
// weight-load cost, which is the source of Sarathi's efficiency.
// Decode tokens are NOT committed; prefill progress is applied immediately.
func (e *Engine) Mixed(decode []*request.Request, prefill []PrefillItem) (*DecodeResult, float64) {
	res := &DecodeResult{}
	totalTokens := 0
	kv := 0
	if len(decode) > 0 {
		res.Tokens = make([]lm.Token, len(decode))
		for _, i := range e.orderByID(decode) {
			r := decode[i]
			res.Tokens[i] = e.target.Dist(r.Ctx).Sample(e.rng)
			kv += r.ContextLen() + 1
		}
		totalTokens += len(decode)
	}
	for _, it := range prefill {
		prior := it.Req.PrefillDone
		c := it.Chunk
		totalTokens += c
		kv += c*prior + c*(c+1)/2
	}
	if totalTokens == 0 {
		return res, 0
	}
	lat := e.targetCost.ForwardLatency(gpu.BatchShape{
		Tokens: totalTokens, Seqs: len(decode) + len(prefill), KVTokens: kv,
	}) + drainReloadStall(prefill)
	for _, it := range prefill {
		it.Req.PrefillDone += it.Chunk
		if it.Req.RemainingPrefill() == 0 {
			it.Req.Phase = request.Decoding
		}
	}
	res.GPUTime = lat
	e.Stats.VerifyTime += lat
	e.Stats.VerifiedTokens += totalTokens
	e.Stats.VerifySteps += len(decode)
	return res, lat
}

// SpeculateResult reports the speculation phase for a batch.
type SpeculateResult struct {
	// Trees[i] is the candidate tree for reqs[i].
	Trees []*toktree.Tree
	// GPUTime is the modeled draft-model time for all beam steps.
	GPUTime float64
	// DraftTokens is the number of draft forward positions processed.
	DraftTokens int
}

// SpeculateBeams runs the speculation phase: a depth-d width-w beam search
// per request, all requests batched per step (the draft processes n·w
// tokens per step after the first, the shape regularity CUDA graphs
// exploit).
//
// The returned trees are pooled: they stay valid until the next
// SpeculateBeams call, when the engine reclaims them.
func (e *Engine) SpeculateBeams(reqs []*request.Request, d, w int) (*SpeculateResult, error) {
	if e.draft == nil || e.draftCost == nil {
		return nil, fmt.Errorf("engine: speculation requires a draft model")
	}
	// Reclaim the previous iteration's trees; their consumers (selections,
	// verification results) are done with them by contract.
	for _, t := range e.liveTrees {
		e.treePool.Put(t)
	}
	e.liveTrees = e.liveTrees[:0]
	getTree := func(r *request.Request) *toktree.Tree {
		t := e.treePool.Get(r.Ctx, r.LastToken())
		e.liveTrees = append(e.liveTrees, t)
		return t
	}

	res := &SpeculateResult{Trees: make([]*toktree.Tree, len(reqs))}
	if len(reqs) == 0 || d == 0 {
		for i, r := range reqs {
			res.Trees[i] = getTree(r)
		}
		return res, nil
	}
	maxSteps := 0
	totalKV := 0
	n := 0 // requests actually speculating (NoSpec ones keep root-only trees)
	for i, r := range reqs {
		t := getTree(r)
		res.Trees[i] = t
		if r.NoSpec {
			// Degraded request: no draft expansion, no share of the batched
			// draft cost. Its root-only tree flows through selection and
			// verification unchanged, committing one correction token.
			continue
		}
		steps, draftTokens, err := e.beam.Search(t, e.draft, d, w)
		if err != nil {
			return nil, fmt.Errorf("engine: beam search for request %d: %w", r.ID, err)
		}
		res.DraftTokens += draftTokens
		if steps > maxSteps {
			maxSteps = steps
		}
		totalKV += r.ContextLen()
		n++
	}
	// Cost: step 1 processes n root tokens; steps 2..d process n·w beam
	// tokens each, batched across the speculating requests.
	for step := 1; step <= maxSteps; step++ {
		tokens := n
		if step > 1 {
			tokens = n * w
		}
		lat := e.draftCost.ForwardLatency(gpu.BatchShape{
			Tokens: tokens, Seqs: n, KVTokens: totalKV + n*step,
		})
		res.GPUTime += lat
	}
	e.Stats.SpecTime += res.GPUTime
	e.Stats.DraftTokens += res.DraftTokens
	return res, nil
}

// VerifyItem pairs a request with its selected draft tree.
type VerifyItem struct {
	Req *request.Request
	Sel *toktree.Selection
}

// VerifyBatchResult reports one batched tree-verification pass.
type VerifyBatchResult struct {
	// Results[i] corresponds to items[i].
	Results []*toktree.VerifyResult
	// GPUTime is the modeled verification pass latency.
	GPUTime float64
	// TokensVerified is the total tree positions processed.
	TokensVerified int
}

// VerifyTrees runs one batched verification pass over the selected trees.
// Tokens are NOT committed; the caller commits at the iteration end time.
func (e *Engine) VerifyTrees(items []VerifyItem) *VerifyBatchResult {
	return e.VerifyTreesWithPrefill(items, nil)
}

// VerifyTreesWithPrefill runs one batched pass that verifies the selected
// trees AND processes prefill chunks for other requests (the unified-batch
// style of tree-based serving engines: prefill tokens ride along in the
// same forward pass, sharing the weight-load cost, so prompts never stall
// decode as a monolithic pass would). Prefill progress is applied
// immediately; verify tokens are NOT committed (caller commits at the
// iteration end time).
func (e *Engine) VerifyTreesWithPrefill(items []VerifyItem, prefill []PrefillItem) *VerifyBatchResult {
	res := &VerifyBatchResult{Results: make([]*toktree.VerifyResult, len(items))}
	if len(items) == 0 && len(prefill) == 0 {
		return res
	}
	// Pooled results: valid until the next VerifyTrees* call. Growth must
	// not move already-assigned entries, so the backing array is replaced
	// wholesale only when too small (stale pointers are dead by contract).
	if cap(e.vres) < len(items) {
		e.vres = make([]toktree.VerifyResult, len(items))
	}
	e.vres = e.vres[:len(items)]

	e.ids = e.ids[:0]
	for i := range items {
		e.ids = append(e.ids, items[i].Req.ID)
	}
	kv := 0
	for _, idx := range e.orderByKeys() {
		it := items[idx]
		vr := &e.vres[idx]
		toktree.VerifyInto(vr, it.Sel, e.verifier, &e.vscratch)
		res.Results[idx] = vr
		res.TokensVerified += vr.TokensVerified
		// Every tree token attends over the request context plus its depth.
		kv += it.Sel.Size() * (it.Req.ContextLen() + 1)
	}
	totalTokens := res.TokensVerified
	for _, it := range prefill {
		prior := it.Req.PrefillDone
		c := it.Chunk
		totalTokens += c
		kv += c*prior + c*(c+1)/2
	}
	res.GPUTime = e.targetCost.ForwardLatency(gpu.BatchShape{
		Tokens: totalTokens, Seqs: len(items) + len(prefill), KVTokens: kv,
	}) + drainReloadStall(prefill)
	for _, it := range prefill {
		it.Req.PrefillDone += it.Chunk
		if it.Req.RemainingPrefill() == 0 {
			it.Req.Phase = request.Decoding
		}
	}
	e.Stats.VerifyTime += res.GPUTime
	e.Stats.VerifiedTokens += totalTokens
	e.Stats.VerifySteps += len(items)
	return res
}

// CommitVerify applies a verification result to a request at time now:
// the accepted prefix plus the correction/bonus token.
func CommitVerify(r *request.Request, vr *toktree.VerifyResult, now float64) int {
	kept := r.Commit(vr.Accepted, now)
	kept += r.Commit1(vr.Correction, now)
	r.VerifySteps++
	return kept
}

// BaselineLatency exposes the target's unloaded per-token decode latency at
// a reference context length (used to derive category-1 SLOs).
func (e *Engine) BaselineLatency(ctx int) float64 {
	return e.targetCost.BaselineLatency(ctx)
}

// DraftStepLatency returns the modeled latency of one single-token draft
// decoding step at a reference context: the serial step cost that makes
// interleaved selection-and-decoding prohibitively slow (Challenge 2).
func (e *Engine) DraftStepLatency() float64 {
	if e.draftCost == nil {
		return 0
	}
	return e.draftCost.BaselineLatency(512)
}
