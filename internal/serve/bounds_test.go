package serve_test

import (
	"strings"
	"testing"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

func mustGen(t *testing.T) *workload.Generator {
	t.Helper()
	return workload.MustGenerator(workload.GeneratorConfig{
		Seed: 1, Mix: workload.DefaultMix, BaselineLatency: 0.03,
	})
}

func mustRNG() *mathutil.RNG { return mathutil.NewRNG(1) }

// The abort paths — deadlock detection and the shared run bounds — now live
// in the unified driver, so they are tested here once for every entry point
// (sim.Run and cluster.Run forward to these code paths).

func TestRunDetectsDeadlock(t *testing.T) {
	// KV too small for the request: admission can never succeed.
	srv, err := serve.NewServer(serve.SingleSystem(testSystemKV(t, 3, 32)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource([]*request.Request{request.New(1, request.Chat, 0.05, 0, 64, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestRunRespectsMaxSimTime(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{MaxSimTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource(mkReqs(5, 1000.0)) // arrivals span 5000s
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err == nil || !strings.Contains(err.Error(), "max simulated time") {
		t.Fatalf("want max-sim-time error, got %v", err)
	}
}

func TestRunRespectsMaxIterations(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource(mkReqs(5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err == nil || !strings.Contains(err.Error(), "max iterations") {
		t.Fatalf("want max-iterations error, got %v", err)
	}
}

func TestTraceSourceValidatesAndCounts(t *testing.T) {
	if _, err := serve.NewTraceSource([]*request.Request{request.New(1, request.Chat, 0, 0, 64, 8, 1)}); err == nil {
		t.Fatal("invalid request accepted")
	}
	src, err := serve.NewTraceSource(mkReqs(3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if src.Remaining() != 3 {
		t.Fatalf("remaining %d", src.Remaining())
	}
	src.Pop()
	if src.Remaining() != 2 {
		t.Fatalf("remaining %d after pop", src.Remaining())
	}
}

func TestInstanceAccessors(t *testing.T) {
	backend := serve.SingleSystem(testSystem(t, 3))
	srv, err := serve.NewServer(backend, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource(mkReqs(3, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	in := backend.Instances()[0]
	if in.ID() != 0 || in.System() == nil {
		t.Fatalf("instance identity: id=%d", in.ID())
	}
	if in.Clock() != rr.EndTime || in.Iterations() != rr.Iterations {
		t.Fatalf("instance clock/iterations %g/%d vs result %g/%d",
			in.Clock(), in.Iterations(), rr.EndTime, rr.Iterations)
	}
	if in.Breakdown() != rr.Instances[0].Breakdown || in.Breakdown().Total() <= 0 {
		t.Fatalf("instance breakdown %+v", in.Breakdown())
	}
}

func TestViolationKindString(t *testing.T) {
	if serve.ViolationTPOT.String() != "tpot" || serve.ViolationTTFT.String() != "ttft" {
		t.Fatalf("kind names %q/%q", serve.ViolationTPOT, serve.ViolationTTFT)
	}
	if s := serve.ViolationKind(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown kind rendered %q", s)
	}
}

func TestNewOpenLoopValidates(t *testing.T) {
	gen := mustGen(t)
	rng := mustRNG()
	rate := func(float64) float64 { return 1.0 }
	cases := []struct {
		name string
		err  func() error
	}{
		{"nil gen", func() error { _, err := serve.NewOpenLoop(nil, rng, rate, 1, 10); return err }},
		{"nil rng", func() error { _, err := serve.NewOpenLoop(gen, nil, rate, 1, 10); return err }},
		{"nil rate", func() error { _, err := serve.NewOpenLoop(gen, rng, nil, 1, 10); return err }},
		{"zero max", func() error { _, err := serve.NewOpenLoop(gen, rng, rate, 0, 10); return err }},
		{"zero duration", func() error { _, err := serve.NewOpenLoop(gen, rng, rate, 1, 0); return err }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestSubmitSourceValidates(t *testing.T) {
	src := serve.NewSubmitSource()
	if err := src.Submit(request.New(1, request.Chat, 0, 0, 64, 8, 1)); err == nil {
		t.Fatal("invalid submission accepted")
	}
	if _, ok := src.Peek(); ok {
		t.Fatal("rejected submission is pending")
	}
}
