package serve_test

import (
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// stubInjector scripts one action of every fault kind, verifying the
// driver's FaultInjector contract without any cluster machinery: it must be
// subscribed to the stream ahead of user observers (it captures a request
// from the admission events it sees), ticked with a monotone clock, and its
// actions emitted as fault events stamped with the action instants.
type stubInjector struct {
	ticks   int
	req     *request.Request
	emitted bool
	lastNow float64
}

func (s *stubInjector) OnEvent(ev serve.Event) {
	if e, ok := ev.(serve.RequestAdmitted); ok && s.req == nil {
		s.req = e.Req
	}
}

func (s *stubInjector) Tick(now float64, q *serve.Queue) []serve.FaultAction {
	s.ticks++
	if now < s.lastNow {
		panic("fault injector ticked with a non-monotone clock")
	}
	s.lastNow = now
	if s.emitted || s.req == nil || now < 0.1 {
		return nil
	}
	s.emitted = true
	return []serve.FaultAction{
		{Kind: serve.FaultReplicaFailed, Time: now, Instance: 0, Lost: 2, Reason: "scripted"},
		{Kind: serve.FaultRequestRetried, Time: now, Instance: 0, Req: s.req, Attempt: 1},
		{Kind: serve.FaultRequestHedged, Time: now, Instance: 0, Req: s.req},
		{Kind: serve.FaultReplicaRecovered, Time: now, Instance: 0, Downtime: 0.5},
	}
}

func TestFaultInjectorTickAndEvents(t *testing.T) {
	inj := &stubInjector{}
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 1)), serve.Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	var events []serve.Event
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { events = append(events, ev) }))
	src, err := serve.NewTraceSource(mkReqs(10, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	if inj.ticks == 0 {
		t.Fatal("fault injector never ticked")
	}
	var order []string
	for _, ev := range events {
		switch e := ev.(type) {
		case serve.ReplicaFailed:
			order = append(order, "failed")
			if e.Lost != 2 || e.Reason != "scripted" {
				t.Fatalf("ReplicaFailed %+v lost the action's fields", e)
			}
		case serve.RequestRetried:
			order = append(order, "retried")
			if e.Req != inj.req || e.Attempt != 1 {
				t.Fatalf("RequestRetried %+v lost the action's fields", e)
			}
		case serve.RequestHedged:
			order = append(order, "hedged")
			if e.Req != inj.req {
				t.Fatalf("RequestHedged %+v lost the action's request", e)
			}
		case serve.ReplicaRecovered:
			order = append(order, "recovered")
			if e.Downtime != 0.5 {
				t.Fatalf("ReplicaRecovered %+v lost the action's downtime", e)
			}
		}
	}
	want := []string{"failed", "retried", "hedged", "recovered"}
	if len(order) != len(want) {
		t.Fatalf("fault events %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fault events %v out of action order %v", order, want)
		}
	}
}
