// Package serve is the unified event-driven serving driver behind every
// simulation entry point: one streaming request-lifecycle loop that feeds
// requests from a pluggable Source into a Backend — a single serving system
// or a multi-replica cluster — advances per-instance clocks at iteration
// granularity, and emits a typed event stream (RequestAdmitted, FirstToken,
// TokensCommitted, SLOViolated, RequestFinished, periodic Snapshot) to
// registered observers, with rolling windowed metrics computed
// incrementally instead of only at end of run.
//
// internal/sim.Run and internal/cluster.Run are thin compatibility wrappers
// over this driver: closed trace replay is a Server over a TraceSource with
// no observers, and runs byte-identically to the loops it replaced. Online
// scenarios — open-loop arrival processes with time-varying rate,
// programmatic submission, live dashboards — use the same loop, so replayed
// and streamed runs share identical clock and visibility semantics:
// arrivals become visible at iteration boundaries, events are processed in
// global (time, ID) order, and all tie-breaking is deterministic.
package serve

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
)

// Run-bound defaults shared by every driver entry point (serve.Options,
// sim.Options and cluster.Options all resolve zero values to these — the
// one place the numbers live).
const (
	// DefaultMaxSimTime aborts runs whose simulated clock exceeds 24 hours.
	DefaultMaxSimTime = 24 * 3600.0
	// DefaultMaxIterations aborts runaway runs at 50 million iterations.
	DefaultMaxIterations = 50_000_000
	// DefaultSnapshotWindow is the rolling-metrics trailing window.
	DefaultSnapshotWindow = 30.0
)

// Options bounds and configures a serving run. The zero value is ready to
// use: generous safety bounds, no snapshots.
type Options struct {
	// MaxSimTime aborts runs when any instance's clock exceeds this
	// (0: DefaultMaxSimTime).
	MaxSimTime float64
	// MaxIterations aborts runaway runs; it counts iterations summed across
	// instances (0: DefaultMaxIterations).
	MaxIterations int
	// SnapshotEvery emits a periodic Snapshot event every so many simulated
	// seconds, plus a final one at end of run (0: no snapshots). Snapshots
	// require at least one observer.
	SnapshotEvery float64
	// Window is the rolling-metrics trailing window for Snapshot events
	// (0: DefaultSnapshotWindow).
	Window float64
	// Autoscaler, when set, resizes the backend mid-run: the driver
	// subscribes it to the event stream ahead of user observers and calls
	// Tick at every iteration boundary, emitting the actions it takes as
	// ScaleUp/ScaleDown events. nil (the default) leaves the fleet static
	// and the run byte-identical to a driver without the hook.
	Autoscaler Autoscaler
	// Adaptive, when set, closes the serving control loop mid-run: the
	// driver subscribes it to the event stream (after the autoscaler, ahead
	// of user observers), consults Decide for every arrival before routing —
	// emitting RequestRejected/RequestDegraded for gated requests — and
	// calls Tick at every iteration boundary so the controller can retune
	// speculation. nil (the default) admits every arrival as submitted and
	// keeps the run byte-identical to a driver without the hook.
	Adaptive AdmissionController
	// Faults, when set, injects failures and drives recovery mid-run: the
	// driver subscribes it to the event stream ahead of every other observer
	// and ticks it before the autoscaler at every iteration boundary (so
	// scaling decisions see the post-fault fleet), emitting the actions it
	// takes as ReplicaFailed/ReplicaRecovered/RequestRetried/RequestHedged
	// events. nil (the default) keeps the run byte-identical to a driver
	// without the hook.
	Faults FaultInjector
}

// fill resolves zero values to the shared defaults.
func (o *Options) fill() {
	if o.MaxSimTime == 0 {
		o.MaxSimTime = DefaultMaxSimTime
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	if o.Window == 0 {
		o.Window = DefaultSnapshotWindow
	}
}

// InstanceResult reports one instance's share of a completed run.
type InstanceResult struct {
	// Iterations is the instance's scheduling-iteration count.
	Iterations int
	// EndTime is the instance's final local clock.
	EndTime float64
	// Breakdown aggregates the instance's per-iteration time components.
	Breakdown metrics.Breakdown
}

// Result reports a completed run.
type Result struct {
	// Instances holds per-instance results in ID order.
	Instances []InstanceResult
	// Iterations is the total iteration count across instances.
	Iterations int
	// EndTime is the latest instance clock: the simulated completion time of
	// the last request.
	EndTime float64
	// Breakdown sums the per-instance time components.
	Breakdown metrics.Breakdown
	// Events is the number of events delivered to observers.
	Events int
}

// reqTrack is the driver's per-request event-derivation state, kept only
// while observers are registered.
type reqTrack struct {
	lastLen  int
	violTPOT bool
	violTTFT bool
}

// Server drives a Backend over a Source. Like the serving systems it hosts,
// a Server is single-use: build a fresh one per run.
type Server struct {
	backend   Backend
	insts     []*Instance
	opts      Options
	observers []Observer
	queue     Queue
	ran       bool

	// Event-derivation state (allocated only when observers exist; the
	// observer-free hot path skips all of it).
	tracking bool
	seq      int
	events   int
	now      float64
	nextSnap float64
	rolling  *metrics.Rolling
	track    map[int]*reqTrack
	doneSeen []int
}

// NewServer validates the backend and bounds and builds a driver.
func NewServer(backend Backend, opts Options) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: backend required")
	}
	insts := backend.Instances()
	if len(insts) == 0 {
		return nil, fmt.Errorf("serve: backend has no instances")
	}
	for i, in := range insts {
		if in == nil {
			return nil, fmt.Errorf("serve: instance %d is nil", i)
		}
		if in.id != i {
			return nil, fmt.Errorf("serve: instance at index %d reports ID %d", i, in.id)
		}
	}
	if opts.SnapshotEvery < 0 {
		return nil, fmt.Errorf("serve: negative snapshot interval %g", opts.SnapshotEvery)
	}
	if opts.Window < 0 {
		return nil, fmt.Errorf("serve: negative rolling window %g", opts.Window)
	}
	opts.fill()
	return &Server{backend: backend, insts: insts, opts: opts}, nil
}

// Subscribe registers an observer for the run's event stream. Call before
// Run; observers are invoked in registration order.
func (s *Server) Subscribe(obs Observer) {
	if obs != nil {
		s.observers = append(s.observers, obs)
	}
}

// Run drives the backend until the source is drained and every dispatched
// request retired. Arrivals are dispatched in (arrival time, ID) order;
// internal deliveries (e.g. migrations) are interleaved in event-time order,
// before arrivals only when strictly earlier. The next instance to act is
// always the busy one with the smallest clock (lowest ID on ties), so runs
// are deterministic.
func (s *Server) Run(src Source) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("serve: source required")
	}
	if s.ran {
		return nil, fmt.Errorf("serve: Server is single-use; build a fresh one per run")
	}
	s.ran = true
	if ac := s.opts.Adaptive; ac != nil {
		s.observers = append([]Observer{ac}, s.observers...)
	}
	if as := s.opts.Autoscaler; as != nil {
		// The autoscaler observes first (then the admission controller):
		// their windows reflect an event before any user observer can react
		// to it.
		s.observers = append([]Observer{as}, s.observers...)
	}
	if fi := s.opts.Faults; fi != nil {
		// The fault injector observes ahead of everything: its failure
		// suspicion must reflect an event before controllers react to it.
		s.observers = append([]Observer{fi}, s.observers...)
	}
	s.tracking = len(s.observers) > 0
	if s.tracking {
		s.track = make(map[int]*reqTrack)
		s.doneSeen = make([]int, len(s.insts))
		if s.opts.SnapshotEvery > 0 {
			s.rolling = metrics.NewRolling(s.opts.Window)
			s.nextSnap = s.opts.SnapshotEvery
		}
	}

	// Let the injector arm its schedule before any work: injections land on
	// the delivery queue at exact instants, interleaved with arrivals.
	s.tickFaults()

	total := 0
	for {
		// Events — source arrivals and queued internal deliveries — at or
		// before the next acting instance's clock are processed first, so
		// every placement decision sees all instances advanced past the
		// event instant (the boundary-visibility rule).
		var busy *Instance
		for _, in := range s.insts {
			if in.hasWork() && (busy == nil || in.clock < busy.clock) {
				busy = in
			}
		}
		evTime := 0.0
		evInternal := false
		evReady := false
		if t, ok := src.Peek(); ok {
			evTime, evReady = t, true
		}
		if d, ok := s.queue.peek(); ok && (!evReady || d.ready < evTime) {
			evTime, evInternal, evReady = d.ready, true, true
		}
		if evReady && (busy == nil || evTime <= busy.clock) {
			if evInternal {
				d := s.queue.pop()
				d.deliver()
				if d.mig != nil && s.tracking {
					// Derivation only: the migration already landed; the event
					// carries its exact in-flight window (Depart → ready).
					s.bumpNow(d.ready)
					s.emit(RequestMigrated{
						EventMeta: s.meta(d.ready), Req: d.mig.Req,
						From: d.mig.From, To: d.mig.To,
						Depart: d.mig.Depart, Bytes: d.mig.Bytes,
					})
				}
				continue
			}
			r := src.Pop()
			if ac := s.opts.Adaptive; ac != nil {
				dec, reason := ac.Decide(r)
				if dec == AdmissionReject {
					s.noteRejected(r, reason)
					continue
				}
				if dec == AdmissionDegrade {
					s.noteDegraded(r, reason)
				}
			}
			in, err := s.backend.Dispatch(r)
			if err != nil {
				return nil, err
			}
			s.noteAdmitted(r, in)
			continue
		}
		if busy == nil {
			break // source drained, every request delivered and retired
		}
		st := busy.sys.Iterate(busy.clock)
		if st.Idle {
			// The Iterate call may have just retired the instance's final
			// requests (systems move committed-Done requests to the pool's
			// done list at the next Iterate, even an idle one), so derive
			// retirement events before anything else; the top of the loop
			// re-checks emptiness. An instance stuck with unrunnable work
			// parks at the next event (which may or may not concern it);
			// with no events left it can never progress: a genuine deadlock.
			s.noteIteration(busy)
			s.tickFaults()
			s.tickAutoscaler()
			s.tickAdaptive()
			if !busy.hasWork() {
				continue
			}
			parkAt := -1.0
			if t, ok := src.Peek(); ok {
				parkAt = t
			}
			if d, ok := s.queue.peek(); ok && (parkAt < 0 || d.ready < parkAt) {
				parkAt = d.ready
			}
			if parkAt >= 0 {
				busy.BumpClock(parkAt)
				continue
			}
			p := busy.sys.Pool()
			return nil, fmt.Errorf("serve: instance %d (%s) deadlocked at t=%.3fs with %d waiting / %d running",
				busy.id, busy.sys.Name(), busy.clock, p.NumWaiting(), p.NumRunning())
		}
		if st.Elapsed <= 0 {
			return nil, fmt.Errorf("serve: instance %d (%s) reported non-positive elapsed %g",
				busy.id, busy.sys.Name(), st.Elapsed)
		}
		if busy.stepScale > 0 && busy.stepScale != 1 {
			st.Elapsed *= busy.stepScale // injected straggler slowdown
		}
		busy.clock += st.Elapsed
		busy.iterations++
		total++
		busy.breakdown.Scheduling += st.SchedCPU
		busy.breakdown.Speculation += st.SpecTime
		busy.breakdown.Verification += st.VerifyTime
		busy.breakdown.Prefill += st.PrefillTime
		if err := s.backend.AfterIterate(busy, &s.queue); err != nil {
			return nil, err
		}
		s.noteIteration(busy)
		s.tickFaults()
		s.tickAutoscaler()
		s.tickAdaptive()
		if busy.clock > s.opts.MaxSimTime {
			return nil, fmt.Errorf("serve: instance %d (%s) exceeded max simulated time %.0fs",
				busy.id, busy.sys.Name(), s.opts.MaxSimTime)
		}
		if total > s.opts.MaxIterations {
			return nil, fmt.Errorf("serve: exceeded max iterations %d", s.opts.MaxIterations)
		}
	}

	if s.opts.Faults != nil && s.tracking {
		// Actions taken at the run's final boundary (a repair delivered as the
		// last queue event, a hedge resolved at the winner's final tick) have
		// not been drained or event-derived yet: tick once more, then sweep so
		// every adopted retirement still gets its lifecycle events.
		s.tickFaults()
		for _, in := range s.insts {
			s.noteIteration(in)
		}
	}

	res := &Result{Instances: make([]InstanceResult, len(s.insts)), Iterations: total}
	for i, in := range s.insts {
		res.Instances[i] = InstanceResult{
			Iterations: in.iterations,
			EndTime:    in.clock,
			Breakdown:  in.breakdown,
		}
		res.Breakdown.Add(in.breakdown)
		if in.clock > res.EndTime {
			res.EndTime = in.clock
		}
	}
	if s.rolling != nil {
		s.bumpNow(res.EndTime)
		s.emitSnapshot(s.now, true)
	}
	res.Events = s.events
	return res, nil
}

// tickFaults lets the fault injector act at an iteration boundary and emits
// the actions it took — crash and recovery instants land via the delivery
// queue, so Time stamps carry the scheduled instants, not the tick that
// drained them.
func (s *Server) tickFaults() {
	fi := s.opts.Faults
	if fi == nil {
		return
	}
	for _, a := range fi.Tick(s.now, &s.queue) {
		s.bumpNow(a.Time)
		switch a.Kind {
		case FaultReplicaFailed:
			s.emit(ReplicaFailed{EventMeta: s.meta(a.Time), Instance: a.Instance, Lost: a.Lost, Reason: a.Reason})
		case FaultReplicaRecovered:
			s.emit(ReplicaRecovered{EventMeta: s.meta(a.Time), Instance: a.Instance, Downtime: a.Downtime})
		case FaultRequestRetried:
			// The retried attempt starts from scratch: reset the progress
			// cursor so its first token re-emits FirstToken (violation flags
			// survive — a deadline missed once stays missed).
			if st := s.track[a.Req.ID]; st != nil {
				st.lastLen = 0
			}
			s.emit(RequestRetried{EventMeta: s.meta(a.Time), Req: a.Req, Instance: a.Instance, Attempt: a.Attempt})
		case FaultRequestHedged:
			s.emit(RequestHedged{EventMeta: s.meta(a.Time), Req: a.Req, Instance: a.Instance})
		}
	}
}

// tickAutoscaler lets the autoscaler act at an iteration boundary and emits
// the actions it took into the event stream.
func (s *Server) tickAutoscaler() {
	as := s.opts.Autoscaler
	if as == nil {
		return
	}
	for _, a := range as.Tick(s.now, &s.queue) {
		if a.Up {
			s.emit(ScaleUp{EventMeta: s.meta(s.now), Action: a})
		} else {
			s.emit(ScaleDown{EventMeta: s.meta(s.now), Action: a})
		}
	}
}

// tickAdaptive lets the admission/speculation controller actuate at an
// iteration boundary.
func (s *Server) tickAdaptive() {
	if ac := s.opts.Adaptive; ac != nil {
		ac.Tick(s.now)
	}
}

// noteRejected derives the RequestRejected event for a gated arrival; the
// request never reaches a serving pool.
func (s *Server) noteRejected(r *request.Request, reason string) {
	if !s.tracking {
		return
	}
	s.bumpNow(r.ArrivalTime)
	s.maybeSnapshots()
	s.emit(RequestRejected{EventMeta: s.meta(r.ArrivalTime), Req: r, Reason: reason})
}

// noteDegraded derives the RequestDegraded event for an arrival admitted at
// reduced service; the controller has already applied the degradation, and
// the RequestAdmitted event for the same request follows.
func (s *Server) noteDegraded(r *request.Request, reason string) {
	if !s.tracking {
		return
	}
	s.bumpNow(r.ArrivalTime)
	s.maybeSnapshots()
	s.emit(RequestDegraded{
		EventMeta: s.meta(r.ArrivalTime), Req: r,
		From: r.DegradedFrom, To: r.Category, Reason: reason,
	})
}

// emit delivers one event to every observer in registration order.
func (s *Server) emit(ev Event) {
	for _, o := range s.observers {
		o.OnEvent(ev)
	}
	s.events++
}

// meta stamps the next event: lifecycle time t, dense delivery sequence.
func (s *Server) meta(t float64) EventMeta {
	m := EventMeta{Time: t, Seq: s.seq}
	s.seq++
	return m
}

// bumpNow advances the driver's processed-time high-water mark, which paces
// periodic snapshots.
func (s *Server) bumpNow(t float64) {
	if t > s.now {
		s.now = t
	}
}

// noteAdmitted derives the RequestAdmitted event for a dispatched arrival.
func (s *Server) noteAdmitted(r *request.Request, in *Instance) {
	if !s.tracking {
		return
	}
	s.bumpNow(r.ArrivalTime)
	s.maybeSnapshots()
	s.track[r.ID] = &reqTrack{}
	if s.rolling != nil {
		s.rolling.Arrived(r)
	}
	s.emit(RequestAdmitted{EventMeta: s.meta(r.ArrivalTime), Req: r, Instance: in.id})
}

// noteIteration derives per-request lifecycle events after in executed one
// iteration: token progress and SLO-violation certainty for resident
// requests, then retirement events for requests that finished.
func (s *Server) noteIteration(in *Instance) {
	if !s.tracking {
		return
	}
	now := in.clock
	s.bumpNow(now)
	pool := in.sys.Pool()
	// Queued requests can only expire their TTFT deadline.
	for _, r := range pool.Waiting() {
		s.checkTTFTDeadline(r, in, now)
	}
	for _, r := range pool.Running() {
		if st := s.track[r.ID]; st != nil {
			s.noteProgress(r, st, in, now)
		}
	}
	done := pool.Done()
	for _, r := range done[s.doneSeen[in.id]:] {
		st := s.track[r.ID]
		if st == nil {
			continue
		}
		s.noteProgress(r, st, in, now)
		if !st.violTPOT && !r.AttainedSLO() {
			st.violTPOT = true
			s.emit(SLOViolated{EventMeta: s.meta(r.DoneTime), Req: r, Instance: in.id, Kind: ViolationTPOT})
		}
		s.emit(RequestFinished{
			EventMeta: s.meta(r.DoneTime), Req: r, Instance: in.id,
			Attained: r.AttainedSLO(), TTFTAttained: r.AttainedTTFT(),
			TPOT: r.AvgTPOT(r.DoneTime),
		})
		if s.rolling != nil {
			s.rolling.Finished(r)
		}
		delete(s.track, r.ID)
	}
	s.doneSeen[in.id] = len(done)
	s.maybeSnapshots()
}

// noteProgress emits token-progress and violation-certainty events for one
// resident (or just-finished) request.
func (s *Server) noteProgress(r *request.Request, st *reqTrack, in *Instance, now float64) {
	if n := r.OutputLen(); n > st.lastLen {
		if st.lastLen == 0 {
			if r.TTFTSLO > 0 && !st.violTTFT && r.TTFT() > r.TTFTSLO {
				st.violTTFT = true
				s.emit(SLOViolated{EventMeta: s.meta(r.FirstTokenTime), Req: r, Instance: in.id, Kind: ViolationTTFT})
			}
			s.emit(FirstToken{EventMeta: s.meta(r.FirstTokenTime), Req: r, Instance: in.id, TTFT: r.TTFT()})
		}
		s.emit(TokensCommitted{EventMeta: s.meta(now), Req: r, Instance: in.id, Tokens: n - st.lastLen, Total: n})
		st.lastLen = n
	} else {
		s.checkTTFTDeadline(r, in, now)
	}
	// TPOT violation is certain once even an instant commit of every
	// remaining token would leave the average above target.
	if !st.violTPOT && r.Phase != request.Done && r.FirstDecodeTime >= 0 &&
		(now-r.FirstDecodeTime)/float64(r.MaxNewTokens) > r.TPOTSLO {
		st.violTPOT = true
		s.emit(SLOViolated{EventMeta: s.meta(now), Req: r, Instance: in.id, Kind: ViolationTPOT})
	}
}

// checkTTFTDeadline emits the TTFT violation the moment the deadline passes
// with no token committed.
func (s *Server) checkTTFTDeadline(r *request.Request, in *Instance, now float64) {
	st := s.track[r.ID]
	if st == nil || st.violTTFT || r.TTFTSLO <= 0 || r.FirstTokenTime >= 0 {
		return
	}
	if now > r.ArrivalTime+r.TTFTSLO {
		st.violTTFT = true
		s.emit(SLOViolated{EventMeta: s.meta(now), Req: r, Instance: in.id, Kind: ViolationTTFT})
	}
}

// maybeSnapshots emits every snapshot whose grid instant the processed-time
// high-water mark has passed.
func (s *Server) maybeSnapshots() {
	if s.rolling == nil {
		return
	}
	for s.now >= s.nextSnap {
		s.emitSnapshot(s.nextSnap, false)
		s.nextSnap += s.opts.SnapshotEvery
	}
}

// emitSnapshot materializes the rolling view with instantaneous occupancy.
func (s *Server) emitSnapshot(t float64, final bool) {
	queued, running := 0, 0
	for _, in := range s.insts {
		p := in.sys.Pool()
		queued += p.NumWaiting()
		running += p.NumRunning()
	}
	s.emit(Snapshot{EventMeta: s.meta(t), Stats: s.rolling.Snapshot(t, queued, running), Final: final})
}
