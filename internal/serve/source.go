package serve

import (
	"fmt"
	"sort"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/workload"
)

// Source feeds requests into the driver in non-decreasing arrival order.
//
// Peek/Pop let the driver interleave arrivals with iteration boundaries and
// internal deliveries in global event-time order without materializing the
// whole stream. The driver re-Peeks after every event it processes, so a
// programmatic source (SubmitSource) may become non-empty again mid-run; a
// run ends when the source reports empty and no instance has work left.
type Source interface {
	// Peek returns the arrival time of the next request without consuming
	// it; ok is false when no request is pending.
	Peek() (t float64, ok bool)
	// Pop consumes and returns the next request. Valid only directly after a
	// Peek that returned ok.
	Pop() *request.Request
}

// TraceSource replays a fixed request trace in the canonical replay order
// (request.OrderForReplay: FIFO by arrival time, then ID) — the closed-loop
// Source behind sim.Run and cluster.Run.
type TraceSource struct {
	ordered []*request.Request
	next    int
}

// NewTraceSource validates the trace and fixes its replay order.
func NewTraceSource(reqs []*request.Request) (*TraceSource, error) {
	ordered, err := request.OrderForReplay(reqs)
	if err != nil {
		return nil, err
	}
	return &TraceSource{ordered: ordered}, nil
}

// Peek implements Source.
func (t *TraceSource) Peek() (float64, bool) {
	if t.next >= len(t.ordered) {
		return 0, false
	}
	return t.ordered[t.next].ArrivalTime, true
}

// Pop implements Source.
func (t *TraceSource) Pop() *request.Request {
	r := t.ordered[t.next]
	t.next++
	return r
}

// Remaining returns the number of requests not yet consumed.
func (t *TraceSource) Remaining() int { return len(t.ordered) - t.next }

// SubmitSource is the programmatic Source: tests, examples and online
// drivers Submit requests — before the run, or from observer callbacks while
// it executes — and the driver consumes them in (arrival time, ID) order.
// Request IDs must be unique across the run.
//
// Storage is a head-indexed slice: Pop nils the consumed slot and advances
// head, and the live window compacts to the front once the dead prefix
// dominates, so a long session run retains O(live) request pointers instead
// of every request ever popped (reslicing from the head would keep the whole
// backing array — and everything it points to — reachable).
type SubmitSource struct {
	pending []*request.Request
	head    int
}

// NewSubmitSource returns an empty programmatic source.
func NewSubmitSource() *SubmitSource { return &SubmitSource{} }

// compact moves the live window to the front of the backing array when the
// consumed prefix is at least as long as the live tail, keeping Pop
// amortized O(1) while bounding retention at ~2× the live request count.
func (s *SubmitSource) compact() {
	if s.head == 0 || s.head < len(s.pending)-s.head {
		return
	}
	n := copy(s.pending, s.pending[s.head:])
	tail := s.pending[n:]
	for i := range tail {
		tail[i] = nil
	}
	s.pending = s.pending[:n]
	s.head = 0
}

// Submit validates r and inserts it into the pending stream. Requests
// submitted mid-run should arrive no earlier than the simulation's current
// time; an earlier arrival is legal and served as backlog, but its queueing
// delay then includes the time that already elapsed.
func (s *SubmitSource) Submit(r *request.Request) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.compact()
	live := s.pending[s.head:]
	at := s.head + sort.Search(len(live), func(i int) bool {
		p := live[i]
		return p.ArrivalTime > r.ArrivalTime ||
			(p.ArrivalTime == r.ArrivalTime && p.ID > r.ID)
	})
	s.pending = append(s.pending, nil)
	copy(s.pending[at+1:], s.pending[at:])
	s.pending[at] = r
	return nil
}

// Pending returns the number of submitted, not yet consumed requests.
func (s *SubmitSource) Pending() int { return len(s.pending) - s.head }

// Peek implements Source.
func (s *SubmitSource) Peek() (float64, bool) {
	if s.head >= len(s.pending) {
		return 0, false
	}
	return s.pending[s.head].ArrivalTime, true
}

// Pop implements Source.
func (s *SubmitSource) Pop() *request.Request {
	r := s.pending[s.head]
	s.pending[s.head] = nil
	s.head++
	s.compact()
	return r
}

// OpenLoop synthesizes an open-loop arrival process lazily: timestamps are
// drawn from a (possibly time-varying) Poisson process via Lewis thinning —
// the same sampling workload.NonHomogeneousPoisson uses, one arrival at a
// time — and each is materialized into a request by the workload generator
// the moment the driver first Peeks past it. Runs are deterministic given
// the RNG seed; an OpenLoop is single-use.
type OpenLoop struct {
	gen      *workload.Generator
	rng      *mathutil.RNG
	rate     workload.RateFn
	maxRate  float64
	duration float64

	t    float64
	next *request.Request
	done bool
	n    int
}

// NewOpenLoop builds an open-loop source over [0, duration) seconds with
// the given time-varying rate. maxRate must upper-bound rate over the
// window (the thinning envelope).
func NewOpenLoop(gen *workload.Generator, rng *mathutil.RNG, rate workload.RateFn, maxRate, duration float64) (*OpenLoop, error) {
	if gen == nil {
		return nil, fmt.Errorf("serve: open-loop source needs a generator")
	}
	if rng == nil {
		return nil, fmt.Errorf("serve: open-loop source needs an RNG")
	}
	if rate == nil {
		return nil, fmt.Errorf("serve: open-loop source needs a rate function")
	}
	if maxRate <= 0 {
		return nil, fmt.Errorf("serve: open-loop max rate %g must be positive", maxRate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("serve: open-loop duration %g must be positive", duration)
	}
	return &OpenLoop{gen: gen, rng: rng, rate: rate, maxRate: maxRate, duration: duration}, nil
}

// advance draws arrivals until one survives thinning or the window ends.
func (o *OpenLoop) advance() {
	if o.next != nil || o.done {
		return
	}
	for {
		o.t += o.rng.ExpFloat64() / o.maxRate
		if o.t >= o.duration {
			o.done = true
			return
		}
		if o.rng.Float64() < o.rate(o.t)/o.maxRate {
			o.next = o.gen.MakeMixedAt(o.t)
			o.n++
			return
		}
	}
}

// Peek implements Source.
func (o *OpenLoop) Peek() (float64, bool) {
	o.advance()
	if o.next == nil {
		return 0, false
	}
	return o.next.ArrivalTime, true
}

// Pop implements Source.
func (o *OpenLoop) Pop() *request.Request {
	r := o.next
	o.next = nil
	return r
}

// Generated returns the number of requests generated so far.
func (o *OpenLoop) Generated() int { return o.n }
