package serve_test

import (
	"fmt"
	"strings"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

func testSystemKV(t *testing.T, seed uint64, kvTokens int) sched.System {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.88, 2)
	eng := engine.MustNew(engine.Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       seed,
	})
	sys, err := sched.NewVLLM(sched.Config{
		Engine:   eng,
		KV:       kvcache.MustNew(kvcache.ConfigForTokens(kvTokens, 16)),
		MaxBatch: 32, MaxPrefillTokens: 2048, SchedOverhead: 30e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testSystem(t *testing.T, seed uint64) sched.System {
	return testSystemKV(t, seed, 100000)
}

func mkReqs(n int, gap float64) []*request.Request {
	reqs := make([]*request.Request, n)
	for i := range reqs {
		reqs[i] = request.New(i, request.Chat, 0.05, float64(i)*gap, 64, 8, uint64(i)*13+1)
	}
	return reqs
}

// describe renders an event as a comparable log line.
func describe(ev serve.Event) string {
	switch e := ev.(type) {
	case serve.RequestAdmitted:
		return fmt.Sprintf("seq=%d t=%.9f admitted req=%d inst=%d", e.Seq, e.Time, e.Req.ID, e.Instance)
	case serve.FirstToken:
		return fmt.Sprintf("seq=%d t=%.9f first req=%d ttft=%.9f", e.Seq, e.Time, e.Req.ID, e.TTFT)
	case serve.TokensCommitted:
		return fmt.Sprintf("seq=%d t=%.9f tokens req=%d n=%d total=%d", e.Seq, e.Time, e.Req.ID, e.Tokens, e.Total)
	case serve.SLOViolated:
		return fmt.Sprintf("seq=%d t=%.9f violated req=%d kind=%s", e.Seq, e.Time, e.Req.ID, e.Kind)
	case serve.RequestFinished:
		return fmt.Sprintf("seq=%d t=%.9f finished req=%d attained=%v", e.Seq, e.Time, e.Req.ID, e.Attained)
	case serve.Snapshot:
		return fmt.Sprintf("seq=%d t=%.9f snapshot fin=%d att=%d final=%v", e.Seq, e.Time, e.Stats.Finished, e.Stats.Attained, e.Final)
	default:
		return fmt.Sprintf("unknown %T", ev)
	}
}

func runWithLog(t *testing.T, mk func() serve.Backend, reqs []*request.Request) []string {
	t.Helper()
	srv, err := serve.NewServer(mk(), serve.Options{SnapshotEvery: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { log = append(log, describe(ev)) }))
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestEventDeliveryDeterministic replays the same seeded configuration
// twice — single system and a two-replica cluster — and requires the full
// event stream (types, stamps, sequence numbers) to be identical.
func TestEventDeliveryDeterministic(t *testing.T) {
	singles := func() serve.Backend { return serve.SingleSystem(testSystem(t, 3)) }
	clusters := func() serve.Backend {
		c, err := cluster.New([]sched.System{testSystem(t, 3), testSystem(t, 4)}, cluster.NewRoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for name, mk := range map[string]func() serve.Backend{"single": singles, "cluster": clusters} {
		a := runWithLog(t, mk, mkReqs(20, 0.05))
		b := runWithLog(t, mk, mkReqs(20, 0.05))
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d events", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: event %d diverged:\n %s\n %s", name, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("%s: no events", name)
		}
	}
}

// TestObserverOrderAndSeq checks that every event reaches observers in
// registration order and that sequence numbers are dense and increasing.
func TestObserverOrderAndSeq(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	lastSeq := -1
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		order = append(order, "A")
		if ev.EventSeq() != lastSeq+1 {
			t.Fatalf("seq %d after %d", ev.EventSeq(), lastSeq)
		}
		lastSeq = ev.EventSeq()
	}))
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { order = append(order, "B") }))
	src, err := serve.NewTraceSource(mkReqs(5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Events == 0 || rr.Events != lastSeq+1 {
		t.Fatalf("events %d, last seq %d", rr.Events, lastSeq)
	}
	if len(order) != 2*rr.Events {
		t.Fatalf("%d observer calls for %d events", len(order), rr.Events)
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "A" || order[i+1] != "B" {
			t.Fatalf("delivery order broke at call %d: %v", i, order[i:i+2])
		}
	}
}

// TestEventStreamConsistency cross-checks the event stream against the
// requests' terminal state: every request admitted and finished exactly
// once, token events summing to each request's output, first-token stamps
// matching the requests' own TTFT accounting.
func TestEventStreamConsistency(t *testing.T) {
	reqs := mkReqs(15, 0.05)
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	admitted := map[int]int{}
	finished := map[int]int{}
	tokens := map[int]int{}
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		switch e := ev.(type) {
		case serve.RequestAdmitted:
			admitted[e.Req.ID]++
			if e.Time != e.Req.ArrivalTime {
				t.Errorf("admitted stamp %.6f != arrival %.6f", e.Time, e.Req.ArrivalTime)
			}
		case serve.FirstToken:
			if e.TTFT != e.Req.TTFT() {
				t.Errorf("req %d first-token TTFT %.9f != request's %.9f", e.Req.ID, e.TTFT, e.Req.TTFT())
			}
		case serve.TokensCommitted:
			tokens[e.Req.ID] += e.Tokens
			if tokens[e.Req.ID] != e.Total {
				t.Errorf("req %d token events sum %d != reported total %d", e.Req.ID, tokens[e.Req.ID], e.Total)
			}
		case serve.RequestFinished:
			finished[e.Req.ID]++
			if e.Time != e.Req.DoneTime {
				t.Errorf("finished stamp %.6f != DoneTime %.6f", e.Time, e.Req.DoneTime)
			}
		}
	}))
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if admitted[r.ID] != 1 || finished[r.ID] != 1 {
			t.Fatalf("req %d admitted %d finished %d times", r.ID, admitted[r.ID], finished[r.ID])
		}
		if tokens[r.ID] != r.OutputLen() {
			t.Fatalf("req %d token events sum %d != output %d", r.ID, tokens[r.ID], r.OutputLen())
		}
	}
}

// TestSnapshotConvergence requires the final snapshot's cumulative rolling
// metrics to equal the terminal Summary computed over the same requests —
// bit-equal, since Rolling mirrors Summarize's arithmetic.
func TestSnapshotConvergence(t *testing.T) {
	reqs := mkReqs(25, 0.05)
	sys := testSystem(t, 3)
	srv, err := serve.NewServer(serve.SingleSystem(sys), serve.Options{SnapshotEvery: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var final *serve.Snapshot
	snaps := 0
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		if s, ok := ev.(serve.Snapshot); ok {
			snaps++
			if s.Final {
				final = &s
			}
		}
	}))
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || snaps < 3 {
		t.Fatalf("final=%v after %d snapshots", final, snaps)
	}
	sum := metrics.Summarize(sys.Name(), reqs, rr.Breakdown)
	st := final.Stats
	if st.Finished != sum.Finished || st.Finished != sum.Requests {
		t.Fatalf("finished %d, summary %d/%d", st.Finished, sum.Finished, sum.Requests)
	}
	if st.Attainment() != sum.Attainment() {
		t.Fatalf("attainment %.9f != %.9f", st.Attainment(), sum.Attainment())
	}
	if st.TTFTAttainment() != sum.TTFTAttainment() {
		t.Fatalf("TTFT attainment %.9f != %.9f", st.TTFTAttainment(), sum.TTFTAttainment())
	}
	if st.Goodput != sum.Goodput || st.Throughput != sum.Throughput {
		t.Fatalf("goodput %.9f/%.9f != %.9f/%.9f", st.Goodput, st.Throughput, sum.Goodput, sum.Throughput)
	}
	if st.MeanAcceptedPerStep != sum.MeanAcceptedPerStep {
		t.Fatalf("mean accepted %.9f != %.9f", st.MeanAcceptedPerStep, sum.MeanAcceptedPerStep)
	}
	if final.Time != rr.EndTime {
		t.Fatalf("final snapshot at %.6f, end %.6f", final.Time, rr.EndTime)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("occupancy at drain: %d queued %d running", st.Queued, st.Running)
	}
}

// TestViolationEvents gives requests impossible SLOs and expects exactly
// one certainty event per kind, ahead of the finish event.
func TestViolationEvents(t *testing.T) {
	reqs := mkReqs(3, 0.05)
	for _, r := range reqs {
		r.TPOTSLO = 1e-6 // unattainable: violation certain after one iteration
		r.TTFTSLO = 1e-6
	}
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[int]map[serve.ViolationKind]int{}
	finishedAfter := map[int]bool{}
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		switch e := ev.(type) {
		case serve.SLOViolated:
			if finishedAfter[e.Req.ID] {
				t.Errorf("req %d violation after finish", e.Req.ID)
			}
			if kinds[e.Req.ID] == nil {
				kinds[e.Req.ID] = map[serve.ViolationKind]int{}
			}
			kinds[e.Req.ID][e.Kind]++
		case serve.RequestFinished:
			finishedAfter[e.Req.ID] = true
			if e.Attained || e.TTFTAttained {
				t.Errorf("req %d reported attained with impossible SLOs", e.Req.ID)
			}
		}
	}))
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		k := kinds[r.ID]
		if k[serve.ViolationTPOT] != 1 || k[serve.ViolationTTFT] != 1 {
			t.Fatalf("req %d violations %v, want one per kind", r.ID, k)
		}
	}
}

// TestSubmitSourceMidRun submits follow-up requests from an observer
// callback — the streaming usage no closed trace can express — and expects
// every generation to retire.
func TestSubmitSourceMidRun(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := serve.NewSubmitSource()
	// Out-of-order pre-run submission: must drain in arrival order.
	for _, r := range []*request.Request{
		request.New(1, request.Chat, 0.05, 0.4, 32, 4, 11),
		request.New(0, request.Chat, 0.05, 0.1, 32, 4, 7),
	} {
		if err := src.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	const maxID = 6
	var admittedOrder []int
	nextID := 2
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		switch e := ev.(type) {
		case serve.RequestAdmitted:
			admittedOrder = append(admittedOrder, e.Req.ID)
		case serve.RequestFinished:
			if nextID <= maxID {
				r := request.New(nextID, request.Chat, 0.05, e.Time+0.2, 32, 4, uint64(nextID)*3+1)
				nextID++
				if err := src.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}))
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	if len(admittedOrder) != maxID+1 {
		t.Fatalf("admitted %d requests, want %d", len(admittedOrder), maxID+1)
	}
	if admittedOrder[0] != 0 || admittedOrder[1] != 1 {
		t.Fatalf("pre-run submissions admitted as %v, want arrival order", admittedOrder[:2])
	}
	if src.Pending() != 0 {
		t.Fatalf("%d submissions left pending", src.Pending())
	}
}

// TestOpenLoopMatchesEagerTrace drains a constant-rate OpenLoop source and
// expects the lazily generated stream to be identical to the eager
// PoissonTrace + FromTimestamps construction with the same seeds.
func TestOpenLoopMatchesEagerTrace(t *testing.T) {
	cfg := workload.GeneratorConfig{Seed: 5, Mix: workload.DefaultMix, BaselineLatency: 0.03}
	eagerGen := workload.MustGenerator(cfg)
	ts := workload.PoissonTrace(mathutil.NewRNG(9), 2.0, 30)
	eager := eagerGen.FromTimestamps(ts)

	lazyGen := workload.MustGenerator(cfg)
	ol, err := serve.NewOpenLoop(lazyGen, mathutil.NewRNG(9),
		func(float64) float64 { return 2.0 }, 2.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	var lazy []*request.Request
	for {
		if _, ok := ol.Peek(); !ok {
			break
		}
		lazy = append(lazy, ol.Pop())
	}
	if len(lazy) == 0 || len(lazy) != len(eager) {
		t.Fatalf("lazy %d requests, eager %d", len(lazy), len(eager))
	}
	for i := range lazy {
		a, b := lazy[i], eager[i]
		if a.ID != b.ID || a.ArrivalTime != b.ArrivalTime || a.Category != b.Category ||
			a.PromptLen != b.PromptLen || a.MaxNewTokens != b.MaxNewTokens || a.Seed != b.Seed {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestOpenLoopEndToEnd drives an open-loop spike profile through the driver
// and expects a deterministic, fully retired run.
func TestOpenLoopEndToEnd(t *testing.T) {
	run := func() (int, float64) {
		cfg := workload.GeneratorConfig{Seed: 5, Mix: workload.DefaultMix, BaselineLatency: 0.03}
		rate, maxRate, err := workload.RateProfile("spike", 2.0, 20)
		if err != nil {
			t.Fatal(err)
		}
		ol, err := serve.NewOpenLoop(workload.MustGenerator(cfg), mathutil.NewRNG(11), rate, maxRate, 20)
		if err != nil {
			t.Fatal(err)
		}
		sys := testSystem(t, 3)
		srv, err := serve.NewServer(serve.SingleSystem(sys), serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := srv.Run(ol)
		if err != nil {
			t.Fatal(err)
		}
		done := sys.Pool().Done()
		if len(done) != ol.Generated() || len(done) == 0 {
			t.Fatalf("retired %d of %d generated", len(done), ol.Generated())
		}
		return len(done), rr.EndTime
	}
	n1, e1 := run()
	n2, e2 := run()
	if n1 != n2 || e1 != e2 {
		t.Fatalf("open-loop runs diverged: (%d,%g) vs (%d,%g)", n1, e1, n2, e2)
	}
}

// TestServerSingleUse rejects a second Run on the same Server.
func TestServerSingleUse(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := serve.NewTraceSource(mkReqs(2, 0.05))
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(src); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("second Run: %v", err)
	}
}

// TestNewServerValidates rejects broken backends and options.
func TestNewServerValidates(t *testing.T) {
	if _, err := serve.NewServer(nil, serve.Options{}); err == nil {
		t.Fatal("nil backend accepted")
	}
	if _, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{SnapshotEvery: -1}); err == nil {
		t.Fatal("negative snapshot interval accepted")
	}
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestObserverFreeRunEmitsNothing keeps the hot path honest: without
// observers the driver derives no events.
func TestObserverFreeRunEmitsNothing(t *testing.T) {
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 3)), serve.Options{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource(mkReqs(5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Events != 0 {
		t.Fatalf("observer-free run emitted %d events", rr.Events)
	}
}
