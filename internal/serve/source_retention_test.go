package serve

import (
	"testing"

	"adaserve/internal/request"
)

// TestSubmitSourceBoundedRetention regression-tests the head-reslice leak:
// Pop must nil consumed slots and compaction must keep the backing array
// proportional to the live window, so a long closed-loop run (every finish
// submits a follow-up) does not retain a pointer to every request it ever
// served. Before the fix, Pop resliced from the head and the source ended a
// 10k-request run holding all 10k request pointers reachable.
func TestSubmitSourceBoundedRetention(t *testing.T) {
	const live, cycles = 8, 10_000
	src := NewSubmitSource()
	submit := func(id int) {
		r := request.New(id, request.Chat, 1, float64(id), 16, 4, uint64(id)+1)
		if err := src.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < live; id++ {
		submit(id)
	}
	maxLen := 0
	for id := live; id < cycles; id++ {
		if _, ok := src.Peek(); !ok {
			t.Fatal("source drained early")
		}
		src.Pop()
		submit(id)
		if n := len(src.pending); n > maxLen {
			maxLen = n
		}
		if src.Pending() != live {
			t.Fatalf("live count %d, want %d", src.Pending(), live)
		}
		// The consumed prefix is nil-ed the moment it is popped, so even the
		// slots compaction has not reclaimed yet retain nothing.
		for i := 0; i < src.head; i++ {
			if src.pending[i] != nil {
				t.Fatalf("popped slot %d still holds a request", i)
			}
		}
	}
	// Compaction bounds the slice at ~2× the live window (head may equal the
	// live tail length just before it fires), independent of run length.
	if bound := 2*live + 1; maxLen > bound {
		t.Fatalf("backing slice grew to %d over %d cycles with %d live (bound %d)",
			maxLen, cycles, live, bound)
	}
}
