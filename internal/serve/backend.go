package serve

import (
	"sort"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// Instance is one serving engine under the driver: a sched.System plus its
// simulation state (local clock, iteration accounting). Backends create
// instances with NewInstance; the driver owns clock advancement and
// iteration accounting.
type Instance struct {
	id         int
	sys        sched.System
	clock      float64
	iterations int
	breakdown  metrics.Breakdown

	// halted freezes the instance: the driver stops iterating it (hasWork
	// reports false), so resident requests make no progress. Fault injection
	// uses this to model a crashed replica whose work is lost in place.
	halted bool
	// stepScale, when positive and not 1, multiplies every iteration's
	// elapsed time: the straggler knob. Zero (the default) means unscaled,
	// keeping fault-free runs byte-identical.
	stepScale float64
}

// NewInstance wraps a serving system as instance id of a backend.
func NewInstance(id int, sys sched.System) *Instance {
	return &Instance{id: id, sys: sys}
}

// ID returns the instance's index within its backend.
func (in *Instance) ID() int { return in.id }

// System returns the wrapped serving system.
func (in *Instance) System() sched.System { return in.sys }

// Clock returns the instance's local simulated time: the end of its last
// executed iteration (or the last event that woke it while idle).
func (in *Instance) Clock() float64 { return in.clock }

// Iterations returns the instance's executed scheduling-iteration count.
func (in *Instance) Iterations() int { return in.iterations }

// Breakdown returns the instance's accumulated per-phase time accounting.
func (in *Instance) Breakdown() metrics.Breakdown { return in.breakdown }

// BumpClock advances the clock to at least t. Idle instances jump to the
// event that wakes them; clocks never move backwards.
func (in *Instance) BumpClock(t float64) {
	if in.clock < t {
		in.clock = t
	}
}

// SetHalted freezes or thaws the instance (see the halted field). Fault
// injectors call this at crash and repair instants.
func (in *Instance) SetHalted(halted bool) { in.halted = halted }

// Halted reports whether the instance is frozen by fault injection.
func (in *Instance) Halted() bool { return in.halted }

// SetStepScale sets the straggler slowdown factor applied to every
// iteration's elapsed time (0 or 1: unscaled).
func (in *Instance) SetStepScale(f float64) { in.stepScale = f }

// StepScale returns the current straggler slowdown factor (0 when unscaled).
func (in *Instance) StepScale() float64 { return in.stepScale }

// hasWork reports whether the instance has waiting or running requests. A
// halted (crashed) instance never has work: its resident requests are frozen
// until fault recovery harvests them.
func (in *Instance) hasWork() bool {
	if in.halted {
		return false
	}
	p := in.sys.Pool()
	return p.NumWaiting() > 0 || p.NumRunning() > 0
}

// Backend is the serving substrate behind a Server: a single system or a
// multi-replica cluster. The driver advances its instances; the backend owns
// request placement (routing) and any post-iteration movement (e.g.
// prefill-to-decode migration in a disaggregated cluster).
type Backend interface {
	// Instances returns the serving instances in ID order; instance i must
	// report ID i. The slice must be stable for the whole run.
	Instances() []*Instance
	// Dispatch routes a newly arrived request: enqueue it into the chosen
	// instance's pool — bumping an idle instance's clock to the arrival
	// instant — and return that instance.
	Dispatch(r *request.Request) (*Instance, error)
	// AfterIterate runs backend work after in executed one iteration (e.g.
	// harvesting prefill-complete requests off a prefill replica), scheduling
	// any deferred deliveries on q.
	AfterIterate(in *Instance, q *Queue) error
}

// single is the trivial backend: one instance, every arrival lands on it.
type single struct {
	insts []*Instance
}

// SingleSystem wraps one serving system as a Backend: the single-replica
// deployment every internal/sim run uses.
func SingleSystem(sys sched.System) Backend {
	return &single{insts: []*Instance{NewInstance(0, sys)}}
}

// Instances implements Backend.
func (s *single) Instances() []*Instance { return s.insts }

// Dispatch implements Backend.
func (s *single) Dispatch(r *request.Request) (*Instance, error) {
	in := s.insts[0]
	in.BumpClock(r.ArrivalTime)
	in.sys.Pool().Enqueue(r)
	return in, nil
}

// AfterIterate implements Backend.
func (s *single) AfterIterate(*Instance, *Queue) error { return nil }

// delivery is one deferred internal event: deliver runs when the driver's
// event cursor reaches the ready instant. mig, when non-nil, annotates the
// delivery as a request migration; the driver emits a RequestMigrated event
// after executing it (only while observers are registered — the annotation
// costs one nil check on the observer-free path).
type delivery struct {
	ready   float64
	id      int
	deliver func()
	mig     *Migration
}

// Migration annotates a scheduled delivery that moves a request between
// replicas, so observers can reconstruct the transfer window (Depart →
// delivery) without the backend knowing about events.
type Migration struct {
	Req *request.Request
	// From and To are the source and destination instance IDs.
	From, To int
	// Depart is when the request left the source.
	Depart float64
	// Bytes is the KV payload moved (0 when no KV travels).
	Bytes float64
}

// Queue holds a run's deferred internal deliveries — events a backend
// schedules for a future instant, like in-flight prefill-to-decode KV
// migrations — ordered by (ready time, id). The driver interleaves them
// with source arrivals in global event-time order (internal deliveries
// before arrivals only when strictly earlier).
type Queue struct {
	items []delivery
}

// Schedule enqueues a delivery at the ready instant. id breaks ties between
// deliveries at the same instant (lower id first); callers use the request
// ID so the order is deterministic.
func (q *Queue) Schedule(ready float64, id int, deliver func()) {
	q.insert(delivery{ready: ready, id: id, deliver: deliver})
}

// ScheduleMigration enqueues a delivery like Schedule and annotates it as a
// request migration: when the driver executes it, it emits a RequestMigrated
// event carrying m. The annotation is derivation-only — it never perturbs
// the simulation, and with no observers registered it costs one nil check.
func (q *Queue) ScheduleMigration(ready float64, id int, m Migration, deliver func()) {
	q.insert(delivery{ready: ready, id: id, deliver: deliver, mig: &m})
}

// insert places d in (ready, id) order.
func (q *Queue) insert(d delivery) {
	at := sort.Search(len(q.items), func(i int) bool {
		it := q.items[i]
		return it.ready > d.ready || (it.ready == d.ready && it.id > d.id)
	})
	q.items = append(q.items, delivery{})
	copy(q.items[at+1:], q.items[at:])
	q.items[at] = d
}

// Len returns the number of pending deliveries.
func (q *Queue) Len() int { return len(q.items) }

// peek returns the earliest pending delivery without consuming it.
func (q *Queue) peek() (delivery, bool) {
	if len(q.items) == 0 {
		return delivery{}, false
	}
	return q.items[0], true
}

// pop consumes and returns the earliest pending delivery.
func (q *Queue) pop() delivery {
	d := q.items[0]
	q.items = q.items[1:]
	return d
}
