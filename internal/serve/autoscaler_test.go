package serve_test

import (
	"testing"

	"adaserve/internal/serve"
)

// stubScaler counts ticks and emits one scripted action pair, verifying the
// driver's Autoscaler contract without any cluster machinery.
type stubScaler struct {
	ticks   int
	emitted bool
	events  []serve.Event
	lastNow float64
}

func (s *stubScaler) OnEvent(ev serve.Event) { s.events = append(s.events, ev) }

func (s *stubScaler) Tick(now float64, q *serve.Queue) []serve.ScaleAction {
	s.ticks++
	if now < s.lastNow {
		panic("autoscaler ticked with a non-monotone clock")
	}
	s.lastNow = now
	if s.emitted || now < 0.1 {
		return nil
	}
	s.emitted = true
	return []serve.ScaleAction{
		{Up: true, Instance: 0, Role: "mixed", Policy: "stub", Reason: "scripted", Fleet: 2},
		{Up: false, Instance: 1, Role: "mixed", Policy: "stub", Reason: "scripted", Fleet: 1},
	}
}

// TestAutoscalerTickAndScaleEvents wires a stub autoscaler through a real
// single-system run: the driver must tick it at iteration boundaries,
// subscribe it to the stream ahead of user observers, and emit its actions
// as ScaleUp/ScaleDown events in sequence order.
func TestAutoscalerTickAndScaleEvents(t *testing.T) {
	scaler := &stubScaler{}
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 1)), serve.Options{Autoscaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	var events []serve.Event
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { events = append(events, ev) }))
	src, err := serve.NewTraceSource(mkReqs(10, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if scaler.ticks == 0 {
		t.Fatal("autoscaler never ticked")
	}
	// The autoscaler observes the same stream the user observer does, and
	// its own scale events are part of it.
	if len(scaler.events) != len(events) || len(events) != rr.Events {
		t.Fatalf("autoscaler saw %d events, observer %d, result reports %d",
			len(scaler.events), len(events), rr.Events)
	}
	var up, down int
	lastSeq := -1
	for _, ev := range events {
		if ev.EventSeq() != lastSeq+1 {
			t.Fatalf("sequence gap at %d", ev.EventSeq())
		}
		lastSeq = ev.EventSeq()
		switch e := ev.(type) {
		case serve.ScaleUp:
			up++
			if !e.Action.Up || e.Action.Policy != "stub" || e.Action.Fleet != 2 {
				t.Fatalf("scale-up event carries wrong action: %+v", e.Action)
			}
			if e.When() < 0.1 {
				t.Fatalf("scale-up stamped at %g, before the scripted trigger", e.When())
			}
		case serve.ScaleDown:
			down++
			if e.Action.Up {
				t.Fatalf("scale-down event with Up action: %+v", e.Action)
			}
		}
	}
	if up != 1 || down != 1 {
		t.Fatalf("saw %d scale-ups / %d scale-downs, want 1 / 1", up, down)
	}
}

// TestAutoscalerAloneEnablesTracking: an autoscaler is an observer — with no
// user observers the run still derives events for it.
func TestAutoscalerAloneEnablesTracking(t *testing.T) {
	scaler := &stubScaler{}
	srv, err := serve.NewServer(serve.SingleSystem(testSystem(t, 1)), serve.Options{Autoscaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewTraceSource(mkReqs(5, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaler.events) == 0 || rr.Events == 0 {
		t.Fatal("autoscaler-only run derived no events")
	}
}
