package serve

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
)

// Event is one typed occurrence in a serving run's request lifecycle. The
// driver emits events to registered observers in a deterministic total
// order: lifecycle moments are reported at the iteration boundary of the
// instance that produced them, so the stream follows simulation-processing
// order (per-event Time stamps carry the exact lifecycle instants, which in
// a multi-instance run are not globally monotone).
type Event interface {
	// When returns the simulated time the event is stamped with.
	When() float64
	// EventSeq returns the event's delivery sequence number: dense, starting
	// at 0, the total order observers receive events in.
	EventSeq() int
	isEvent()
}

// EventMeta is the header embedded in every event.
type EventMeta struct {
	// Time is the simulated instant of the underlying lifecycle moment.
	Time float64
	// Seq is the delivery sequence number.
	Seq int
}

// When implements Event.
func (m EventMeta) When() float64 { return m.Time }

// EventSeq implements Event.
func (m EventMeta) EventSeq() int { return m.Seq }

func (EventMeta) isEvent() {}

// RequestAdmitted reports a request entering the serving system: the driver
// dispatched it onto an instance, whose pool it now waits in. Time is the
// request's arrival instant.
type RequestAdmitted struct {
	EventMeta
	Req *request.Request
	// Instance is the ID of the serving instance the request was routed to.
	Instance int
}

// FirstToken reports a request's first committed output token. Time is the
// commit instant, so Time − ArrivalTime is the request's TTFT.
type FirstToken struct {
	EventMeta
	Req      *request.Request
	Instance int
	// TTFT is the request's time-to-first-token in seconds.
	TTFT float64
}

// TokensCommitted reports output tokens committed for one request by one
// scheduling iteration. Time is the iteration's end.
type TokensCommitted struct {
	EventMeta
	Req      *request.Request
	Instance int
	// Tokens is the number committed this iteration; Total is the request's
	// cumulative output length after it.
	Tokens, Total int
}

// RequestRejected reports an arrival the admission gate turned away: the
// request never enters a serving pool and retires unserved. Time is the
// arrival instant. Exactly one terminal admission event (RequestRejected,
// or RequestDegraded followed by RequestAdmitted, or RequestAdmitted
// alone) is emitted per offered request.
type RequestRejected struct {
	EventMeta
	Req *request.Request
	// Reason is the gate's human-readable trigger.
	Reason string
}

// RequestDegraded reports an arrival admitted under overload at reduced
// service: the gate relaxed the request to the best-effort class and
// disabled its speculation (see request.Degrade) before dispatch. From and
// To record the SLO-class transition; the RequestAdmitted event for the
// same request follows immediately. Time is the arrival instant.
type RequestDegraded struct {
	EventMeta
	Req      *request.Request
	From, To request.Category
	// Reason is the gate's human-readable trigger.
	Reason string
}

// ViolationKind discriminates SLO violations.
type ViolationKind int

const (
	// ViolationTPOT: the request's average per-token latency cannot meet its
	// TPOT SLO any more — even committing every remaining token instantly
	// would leave it above target.
	ViolationTPOT ViolationKind = iota
	// ViolationTTFT: the request's TTFT deadline passed before its first
	// token was committed.
	ViolationTTFT
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationTPOT:
		return "tpot"
	case ViolationTTFT:
		return "ttft"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// SLOViolated reports the earliest iteration boundary at which a request's
// SLO violation became certain — before the request finishes, so online
// policies (renegotiation, shedding, alerting) can react. At most one event
// per kind fires per request.
type SLOViolated struct {
	EventMeta
	Req      *request.Request
	Instance int
	Kind     ViolationKind
}

// RequestFinished reports a retired request. Time is the request's DoneTime.
type RequestFinished struct {
	EventMeta
	Req      *request.Request
	Instance int
	// Attained and TTFTAttained report the request's SLO outcomes; TPOT is
	// its final average per-token latency.
	Attained, TTFTAttained bool
	TPOT                   float64
}

// ScaleUp reports an autoscaler decision to grow the fleet: one replica left
// the stopped state and began provisioning (or, with a zero cold-start,
// became active immediately). Time is the decision instant; the replica
// starts accepting work once its cold start elapses.
type ScaleUp struct {
	EventMeta
	Action ScaleAction
}

// ScaleDown reports an autoscaler decision to shrink the fleet: one replica
// began draining (no new admissions; in-flight work finishes or migrates) or
// had its provisioning canceled. Time is the decision instant.
type ScaleDown struct {
	EventMeta
	Action ScaleAction
}

// Snapshot is the periodic rolling-metrics event: emitted every
// Options.SnapshotEvery simulated seconds (stamped on that grid), plus one
// final snapshot at end of run whose cumulative fields match the terminal
// metrics.Summary. State reflects the iteration boundary at which the
// snapshot was emitted.
type Snapshot struct {
	EventMeta
	// Stats is the incrementally maintained rolling view: cumulative and
	// windowed attainment/goodput, overall and per SLO class.
	Stats metrics.RollingStats
	// Final marks the end-of-run snapshot.
	Final bool
}

// ScaleAction is one fleet-resize decision an Autoscaler took at an
// iteration boundary. The driver wraps each action in a ScaleUp or ScaleDown
// event so the stream carries the full replica-lifecycle history.
type ScaleAction struct {
	// Up discriminates growth (provision a replica) from shrink (drain one).
	Up bool
	// Instance is the ID of the affected serving instance.
	Instance int
	// Role is the affected replica's serving role ("mixed", "prefill",
	// "decode").
	Role string
	// Policy names the deciding policy; Reason is its human-readable trigger
	// (e.g. "queued 5120 tok > 2048/replica").
	Policy, Reason string
	// Fleet is the committed fleet size — replicas consuming capacity
	// (provisioning, active or draining) — after the action.
	Fleet int
}

// Autoscaler resizes the backend while a run executes. The driver subscribes
// it to the event stream (it observes like any Observer, before user
// observers) and calls Tick at every iteration boundary with the processed-
// time high-water mark and the run's delivery queue; the implementation
// paces its own decisions, actuates the backend (e.g. an elastic cluster's
// ScaleUp/ScaleDown), schedules deferred lifecycle transitions on the queue,
// and returns the actions it took for the driver to emit as events.
//
// Implementations must be deterministic and single-use, like the backends
// they resize.
type Autoscaler interface {
	Observer
	Tick(now float64, q *Queue) []ScaleAction
}

// ReplicaFailed reports an injected replica crash: the instance halted
// abruptly at Time, freezing (and ultimately losing) its queued and running
// requests along with its cached KV. Recovery, if configured, harvests and
// requeues the lost work after the detection timeout.
type ReplicaFailed struct {
	EventMeta
	// Instance is the crashed serving instance's ID.
	Instance int
	// Lost is the number of resident requests frozen by the crash.
	Lost int
	// Reason is the injection's human-readable cause.
	Reason string
}

// ReplicaRecovered reports a crashed replica returning at Time: to active
// service in a static fleet, or to spare (stopped) capacity in an elastic one
// — where the autoscaler re-provisions replacement capacity as if the crash
// had been an organic scale-down.
type ReplicaRecovered struct {
	EventMeta
	// Instance is the recovered serving instance's ID.
	Instance int
	// Downtime is the failure span in simulated seconds.
	Downtime float64
}

// RequestRetried reports a lost request re-entering service: failure
// detection harvested it off a crashed replica and, after its backoff, the
// recovery path re-dispatched it (reset to scratch — lost KV is recomputed,
// and TTFT/TPOT still measure from the original arrival). Time is the
// re-dispatch instant.
type RequestRetried struct {
	EventMeta
	Req *request.Request
	// Instance is the replica the retry landed on.
	Instance int
	// Attempt is the request's retry ordinal (1 = first retry).
	Attempt int
}

// RequestMigrated reports a request's KV state landing on another replica:
// the prefill-to-decode handoff of a disaggregated cluster, or a drain
// migration off a scaling-down replica. Depart is when the request left the
// source (prefill completion / drain decision); Time is the delivery instant
// at the destination, so Time − Depart is the transfer's in-flight window —
// the KV-transfer span of a request's observability timeline.
type RequestMigrated struct {
	EventMeta
	Req *request.Request
	// From and To are the source and destination serving instances.
	From, To int
	// Depart is the instant the request left the source replica.
	Depart float64
	// Bytes is the KV payload priced over the interconnect (0 for drain
	// migrations of still-queued requests, which carry no KV).
	Bytes float64
}

// RequestHedged reports a duplicate dispatch for a request whose TTFT
// deadline is at risk on a suspect (stalled or crashed-but-undetected)
// replica: a clone races on another active replica, first finish wins, and
// the loser is cancelled — but billed, having consumed real capacity. Time is
// the hedge instant.
type RequestHedged struct {
	EventMeta
	Req *request.Request
	// Instance is the replica the hedge duplicate landed on.
	Instance int
}

// FaultActionKind discriminates the actions a FaultInjector reports.
type FaultActionKind int

const (
	// FaultReplicaFailed: an injected crash halted a replica.
	FaultReplicaFailed FaultActionKind = iota
	// FaultReplicaRecovered: a crashed replica returned.
	FaultReplicaRecovered
	// FaultRequestRetried: a lost request was re-dispatched.
	FaultRequestRetried
	// FaultRequestHedged: a duplicate dispatch was launched.
	FaultRequestHedged
)

// FaultAction is one fault-lifecycle occurrence a FaultInjector took between
// ticks; the driver wraps each in the matching event so the stream carries
// the full failure history.
type FaultAction struct {
	Kind FaultActionKind
	// Time is the simulated instant of the underlying occurrence (the fault
	// schedule's instant, not the tick that drained it).
	Time float64
	// Instance is the affected serving instance.
	Instance int
	// Req is the affected request (retry and hedge actions).
	Req *request.Request
	// Attempt is the retry ordinal; Lost the resident requests frozen by a
	// crash; Downtime the failure span closed by a recovery.
	Attempt  int
	Lost     int
	Downtime float64
	// Reason is the injection's human-readable cause.
	Reason string
}

// FaultInjector drives fault injection and recovery while a run executes.
// The driver subscribes it to the event stream ahead of every other observer
// and calls Tick at every iteration boundary with the processed-time
// high-water mark and the run's delivery queue; the implementation schedules
// its injections and recovery steps on the queue at exact instants
// (interleaved deterministically with arrivals and migrations) and returns
// the actions taken since the last tick for the driver to emit as events.
//
// Implementations must be deterministic and single-use, like the backends
// they disrupt.
type FaultInjector interface {
	Observer
	Tick(now float64, q *Queue) []FaultAction
}

// AdmissionDecision classifies one arrival at the admission gate.
type AdmissionDecision int

const (
	// AdmissionAdmit serves the request as submitted.
	AdmissionAdmit AdmissionDecision = iota
	// AdmissionDegrade admits the request at reduced service: best-effort
	// class, speculation disabled.
	AdmissionDegrade
	// AdmissionReject turns the request away without dispatching it.
	AdmissionReject
)

// String implements fmt.Stringer.
func (d AdmissionDecision) String() string {
	switch d {
	case AdmissionAdmit:
		return "admit"
	case AdmissionDegrade:
		return "degrade"
	case AdmissionReject:
		return "reject"
	default:
		return fmt.Sprintf("AdmissionDecision(%d)", int(d))
	}
}

// AdmissionController closes the serving control loop: it observes the
// event stream, gates every arrival before the backend routes it, and
// retunes the speculation envelope of the systems it controls at iteration
// boundaries. Wire one into a run via serve.Options.Adaptive; the driver
// subscribes it after the autoscaler and ahead of user observers.
//
// Implementations must be deterministic and single-use, like the backends
// they control.
type AdmissionController interface {
	Observer
	// Decide classifies an arrival before dispatch. On AdmissionDegrade the
	// controller must already have applied the degradation to the request
	// (request.Degrade — the one sanctioned pre-admission mutation); on
	// AdmissionReject the driver drops the request without dispatching it.
	// The returned reason annotates the emitted event.
	Decide(r *request.Request) (AdmissionDecision, string)
	// Tick runs closed-loop actuation at an iteration boundary; now is the
	// driver's processed-time high-water mark.
	Tick(now float64)
}

// Observer receives every event of a run. Observers registered on a Server
// are invoked synchronously, in registration order, for each event in
// delivery order; they must not mutate requests or serving state.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }
