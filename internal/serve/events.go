package serve

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
)

// Event is one typed occurrence in a serving run's request lifecycle. The
// driver emits events to registered observers in a deterministic total
// order: lifecycle moments are reported at the iteration boundary of the
// instance that produced them, so the stream follows simulation-processing
// order (per-event Time stamps carry the exact lifecycle instants, which in
// a multi-instance run are not globally monotone).
type Event interface {
	// When returns the simulated time the event is stamped with.
	When() float64
	// EventSeq returns the event's delivery sequence number: dense, starting
	// at 0, the total order observers receive events in.
	EventSeq() int
	isEvent()
}

// EventMeta is the header embedded in every event.
type EventMeta struct {
	// Time is the simulated instant of the underlying lifecycle moment.
	Time float64
	// Seq is the delivery sequence number.
	Seq int
}

// When implements Event.
func (m EventMeta) When() float64 { return m.Time }

// EventSeq implements Event.
func (m EventMeta) EventSeq() int { return m.Seq }

func (EventMeta) isEvent() {}

// RequestAdmitted reports a request entering the serving system: the driver
// dispatched it onto an instance, whose pool it now waits in. Time is the
// request's arrival instant.
type RequestAdmitted struct {
	EventMeta
	Req *request.Request
	// Instance is the ID of the serving instance the request was routed to.
	Instance int
}

// FirstToken reports a request's first committed output token. Time is the
// commit instant, so Time − ArrivalTime is the request's TTFT.
type FirstToken struct {
	EventMeta
	Req      *request.Request
	Instance int
	// TTFT is the request's time-to-first-token in seconds.
	TTFT float64
}

// TokensCommitted reports output tokens committed for one request by one
// scheduling iteration. Time is the iteration's end.
type TokensCommitted struct {
	EventMeta
	Req      *request.Request
	Instance int
	// Tokens is the number committed this iteration; Total is the request's
	// cumulative output length after it.
	Tokens, Total int
}

// ViolationKind discriminates SLO violations.
type ViolationKind int

const (
	// ViolationTPOT: the request's average per-token latency cannot meet its
	// TPOT SLO any more — even committing every remaining token instantly
	// would leave it above target.
	ViolationTPOT ViolationKind = iota
	// ViolationTTFT: the request's TTFT deadline passed before its first
	// token was committed.
	ViolationTTFT
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationTPOT:
		return "tpot"
	case ViolationTTFT:
		return "ttft"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// SLOViolated reports the earliest iteration boundary at which a request's
// SLO violation became certain — before the request finishes, so online
// policies (renegotiation, shedding, alerting) can react. At most one event
// per kind fires per request.
type SLOViolated struct {
	EventMeta
	Req      *request.Request
	Instance int
	Kind     ViolationKind
}

// RequestFinished reports a retired request. Time is the request's DoneTime.
type RequestFinished struct {
	EventMeta
	Req      *request.Request
	Instance int
	// Attained and TTFTAttained report the request's SLO outcomes; TPOT is
	// its final average per-token latency.
	Attained, TTFTAttained bool
	TPOT                   float64
}

// Snapshot is the periodic rolling-metrics event: emitted every
// Options.SnapshotEvery simulated seconds (stamped on that grid), plus one
// final snapshot at end of run whose cumulative fields match the terminal
// metrics.Summary. State reflects the iteration boundary at which the
// snapshot was emitted.
type Snapshot struct {
	EventMeta
	// Stats is the incrementally maintained rolling view: cumulative and
	// windowed attainment/goodput, overall and per SLO class.
	Stats metrics.RollingStats
	// Final marks the end-of-run snapshot.
	Final bool
}

// Observer receives every event of a run. Observers registered on a Server
// are invoked synchronously, in registration order, for each event in
// delivery order; they must not mutate requests or serving state.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }
