package serve

import "testing"

// TestSharedRunBoundDefaults is the single home of the run-bound defaults
// shared by every driver entry point: serve.Options resolves zero values
// here, and sim.Options / cluster.Options forward their zero values to this
// fill — so the 24h / 50M numbers live in exactly one place.
func TestSharedRunBoundDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.MaxSimTime != DefaultMaxSimTime || DefaultMaxSimTime != 24*3600.0 {
		t.Fatalf("MaxSimTime default %g (const %g)", o.MaxSimTime, float64(DefaultMaxSimTime))
	}
	if o.MaxIterations != DefaultMaxIterations || DefaultMaxIterations != 50_000_000 {
		t.Fatalf("MaxIterations default %d (const %d)", o.MaxIterations, DefaultMaxIterations)
	}
	if o.Window != DefaultSnapshotWindow {
		t.Fatalf("Window default %g", o.Window)
	}
	// Explicit values survive fill.
	o = Options{MaxSimTime: 7, MaxIterations: 9, Window: 3}
	o.fill()
	if o.MaxSimTime != 7 || o.MaxIterations != 9 || o.Window != 3 {
		t.Fatalf("fill clobbered explicit options: %+v", o)
	}
}

func TestQueueOrdersByReadyThenID(t *testing.T) {
	var q Queue
	var got []int
	add := func(ready float64, id int) {
		q.Schedule(ready, id, func() { got = append(got, id) })
	}
	add(2.0, 1)
	add(1.0, 9)
	add(1.0, 3)
	add(2.0, 0)
	add(0.5, 5)
	if q.Len() != 5 {
		t.Fatalf("len %d", q.Len())
	}
	for q.Len() > 0 {
		q.pop().deliver()
	}
	want := []int{5, 3, 9, 0, 1}
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}
